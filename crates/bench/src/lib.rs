//! Shared helpers for the figure-regeneration benches.
//!
//! Every bench prints the corresponding paper table/series to stdout
//! (`cargo bench` output) and then takes Criterion measurements of the
//! feasible configurations. `EXPERIMENTS.md` records paper-vs-measured.

pub mod harness;

use rehearsal::core::determinism::{
    check_determinism, AnalysisAborted, AnalysisOptions, DeterminismReport, FsGraph,
};
use rehearsal::fs::{ArenaStats, Content, Expr, FsPath, Pred};
use rehearsal::trace::{Session, TraceSnapshot};
use rehearsal::{Platform, Rehearsal};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// All reductions on (the paper's default configuration).
pub fn options_full() -> AnalysisOptions {
    AnalysisOptions::default()
}

/// Commutativity on, both §4.4 reductions (shrinking *and* elimination)
/// off — fig. 11b's "No" bars ("Shrinking and eliminating resources").
pub fn options_no_pruning() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Pruning off, commutativity off (fig. 11c's "No" bars; elimination is
/// commutativity-based so it is off implicitly).
pub fn options_no_commutativity() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        commutativity: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Commutativity on, pruning off (fig. 11c's "Yes" bars).
pub fn options_commutativity_only() -> AnalysisOptions {
    options_no_pruning()
}

/// Lowers a benchmark manifest to an [`FsGraph`] on Ubuntu.
pub fn lower(source: &str) -> FsGraph {
    Rehearsal::new(Platform::Ubuntu)
        .lower(source)
        .expect("benchmark manifests lower cleanly")
}

/// Runs one determinism check with a wall-clock budget, returning elapsed
/// time (or the abort).
pub fn timed_check(
    graph: &FsGraph,
    options: &AnalysisOptions,
    budget: Duration,
) -> Result<(Duration, DeterminismReport), AnalysisAborted> {
    let mut options = options.clone();
    options.timeout = Some(budget);
    let start = Instant::now();
    let report = check_determinism(graph, &options)?;
    Ok((start.elapsed(), report))
}

/// Formats a timing cell, using the paper's "Timeout" convention.
pub fn cell(result: &Result<(Duration, DeterminismReport), AnalysisAborted>) -> String {
    match result {
        Ok((t, _)) => format!("{:.3}s", t.as_secs_f64()),
        Err(_) => "Timeout".to_string(),
    }
}

/// The fig. 13 workload: `n` unordered file resources that all write the
/// same path (expressed directly in FS, as the paper notes it is not valid
/// Puppet).
pub fn conflicting_writers(n: usize) -> FsGraph {
    let f = FsPath::parse("/conflict/file").expect("static path");
    let parent = FsPath::parse("/conflict").expect("static path");
    let exprs: Vec<Expr> = (0..n)
        .map(|i| {
            let c = Content::intern(&format!("writer-{i}"));
            let ensure_parent = Expr::if_then(Pred::is_dir(parent).not(), Expr::mkdir(parent));
            ensure_parent.seq(Expr::if_(
                Pred::does_not_exist(f),
                Expr::create_file(f, c),
                Expr::if_(
                    Pred::is_file(f),
                    Expr::rm(f).seq(Expr::create_file(f, c)),
                    Expr::ERROR,
                ),
            ))
        })
        .collect();
    let names = (0..n).map(|i| format!("File[w{i}]")).collect();
    FsGraph::new(exprs, BTreeSet::new(), names)
}

/// The fig. 13 deterministic variant: `n` conflicting packages that all
/// create the same file, each ordered before a final `file` resource that
/// fixes the content — forcing the solver to prove unsatisfiability.
pub fn conflicting_packages_manifest(n: usize) -> (String, Rehearsal) {
    let mut src = String::new();
    for i in 1..=n {
        src.push_str(&format!(
            "package {{ 'A-{i}': ensure => present, before => File['/software/a'] }}\n"
        ));
    }
    src.push_str("file { '/software/a': content => 'x' }\n");
    let tool = Rehearsal::new(Platform::Ubuntu).with_db(rehearsal_pkgdb::conflict_db(n));
    (src, tool)
}

/// The fig13-scaling workload: `n` *independent* resources (distinct
/// paths, no edges) plus a *chain* of `n` dependent resources (a total
/// order via edges). The independent half exercises the fringe/commute
/// machinery on a wide frontier; the chain half exercises deep prefixes
/// (and, historically, recursion depth — the explicit-stack explorer must
/// not overflow on it). Deterministic by construction.
pub fn scaling_chain(n: usize) -> FsGraph {
    let ind_dir = FsPath::parse("/ind").expect("static path");
    let chain_dir = FsPath::parse("/chain").expect("static path");
    let ensure = |d: FsPath| Expr::if_then(Pred::is_dir(d).not(), Expr::mkdir(d));
    let mut exprs = Vec::with_capacity(2 * n);
    let mut names = Vec::with_capacity(2 * n);
    for i in 0..n {
        let f = FsPath::parse(&format!("/ind/f{i}")).expect("static path");
        exprs.push(ensure(ind_dir).seq(Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, Content::intern("x")),
            Expr::SKIP,
        )));
        names.push(format!("File[ind-{i}]"));
    }
    for i in 0..n {
        let f = FsPath::parse(&format!("/chain/f{i}")).expect("static path");
        exprs.push(ensure(chain_dir).seq(Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, Content::intern("y")),
            Expr::SKIP,
        )));
        names.push(format!("File[chain-{i}]"));
    }
    let mut edges = BTreeSet::new();
    for i in 0..n.saturating_sub(1) {
        edges.insert((n + i, n + i + 1));
    }
    FsGraph::new(exprs, edges, names)
}

/// One measured row of a fig11-style bench, for the IR report
/// (`BENCH_ir.json`) and the CI bench-smoke artifact.
#[derive(Debug, Clone)]
pub struct IrBenchRow {
    /// Benchmark name (paper fig. 11 naming).
    pub bench: String,
    /// Analysis configuration (e.g. `pruning`, `no-pruning`).
    pub config: String,
    /// Mean wall time in milliseconds.
    pub wall_ms: f64,
    /// Verdict of the run (`deterministic` / `nondeterministic`).
    pub verdict: String,
    /// IR arena growth attributable to this *benchmark* (not this config:
    /// interning is driven by lowering plus the first analysis, so the
    /// same benchmark's rows share one growth figure). The caller diffs
    /// `arena_stats()` around the benchmark's first lowering + analysis in
    /// the process — later re-runs grow the arena by nothing (that is the
    /// point of hash-consing), so diffing a warm re-run would record
    /// zeros.
    pub arena: ArenaStats,
    /// Dedup ratio within this benchmark's own interning requests
    /// (config-independent, like [`IrBenchRow::arena`]).
    pub dedup_ratio: f64,
    /// Formula nodes allocated by the analysis (solver-side sharing).
    pub formula_nodes: usize,
}

/// Checks a verdict against the suite's pinned expectation, panicking on
/// drift — this is what makes the quick-mode bench a CI gate.
pub fn assert_verdict(bench: &str, expected_deterministic: bool, report: &DeterminismReport) {
    assert_eq!(
        report.is_deterministic(),
        expected_deterministic,
        "verdict drift on benchmark {bench}: expected deterministic={expected_deterministic}"
    );
}

/// Runs one benchmark under one configuration, measuring wall time and
/// verdict; panics on verdict drift. `arena_growth` is the arena delta the
/// caller observed around this benchmark's first lowering + analysis (see
/// [`IrBenchRow::arena`]).
pub fn measure_ir_row(
    bench: &rehearsal::benchmarks::Benchmark,
    config: &str,
    options: &AnalysisOptions,
    samples: usize,
    arena_growth: ArenaStats,
) -> IrBenchRow {
    let graph = lower(bench.source);
    // Always run under a wall-clock budget so a regression cannot hang the
    // CI smoke step; an abort degrades to a "timeout" row (as the fig11b
    // table does) instead of panicking.
    let mut options = options.clone();
    if options.timeout.is_none() {
        options.timeout = Some(Duration::from_secs(600));
    }
    let mut total = Duration::ZERO;
    let mut report = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        report = check_determinism(&graph, &options).ok();
        total += start.elapsed();
    }
    let verdict = match &report {
        Some(r) => {
            assert_verdict(bench.name, bench.deterministic, r);
            if r.is_deterministic() {
                "deterministic"
            } else {
                "nondeterministic"
            }
        }
        None => "timeout",
    };
    IrBenchRow {
        bench: bench.name.to_string(),
        config: config.to_string(),
        wall_ms: total.as_secs_f64() * 1000.0 / samples.max(1) as f64,
        verdict: verdict.to_string(),
        arena: arena_growth,
        dedup_ratio: arena_growth.dedup_ratio(),
        formula_nodes: report.map(|r| r.stats().formula_nodes).unwrap_or(0),
    }
}

/// Serializes rows as a stable JSON document via the shared
/// [`rehearsal::fleet::json::Json`] value model (the same serializer the
/// fleet report and the CLI `--json` modes use).
pub fn ir_rows_to_json(generated_by: &str, rows: &[IrBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("bench", Json::str(&r.bench)),
                ("config", Json::str(&r.config)),
                ("wall_ms", Json::Num((r.wall_ms * 1000.0).round() / 1000.0)),
                ("verdict", Json::str(&r.verdict)),
                ("arena_expr_nodes", Json::num(r.arena.expr_nodes as u32)),
                ("arena_pred_nodes", Json::num(r.arena.pred_nodes as u32)),
                (
                    "arena_dedup_ratio",
                    Json::Num((r.dedup_ratio * 10000.0).round() / 10000.0),
                ),
                ("formula_nodes", Json::num(r.formula_nodes as u32)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the IR report to the path named by `REHEARSAL_BENCH_JSON`, when
/// set (the CI bench-smoke step uploads it as an artifact).
pub fn write_ir_json(generated_by: &str, rows: &[IrBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = ir_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!("wrote IR bench report to {}", path.to_string_lossy());
}

/// One measured row of the explorer-core benches (`fig13_scaling`), for
/// `BENCH_explorer.json` and the CI bench-smoke artifact.
#[derive(Debug, Clone)]
pub struct ExplorerBenchRow {
    /// Workload name (e.g. `writers`, `packages-unsat`, `mixed-chain`).
    pub workload: String,
    /// The scale parameter.
    pub n: usize,
    /// Analysis configuration label.
    pub config: String,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Verdict (`deterministic` / `nondeterministic` / `timeout`).
    pub verdict: String,
    /// Sequences covered (including cache skips).
    pub sequences_explored: usize,
    /// Of those, covered via state-cache hits.
    pub sequences_skipped: usize,
    /// Distinct symbolic outputs after dedup.
    pub distinct_outputs: usize,
    /// Persistent-solver conflicts.
    pub solver_conflicts: u64,
    /// Grounding reuse ratio across the check's incremental queries.
    pub grounding_reuse_ratio: f64,
}

/// Measures one workload/config and pins its verdict (drift ⇒ panic, the
/// CI-gate behavior — wall time never fails the bench).
pub fn measure_explorer_row(
    workload: &str,
    n: usize,
    config: &str,
    graph: &FsGraph,
    options: &AnalysisOptions,
    expected_deterministic: bool,
) -> ExplorerBenchRow {
    let mut options = options.clone();
    if options.timeout.is_none() {
        options.timeout = Some(Duration::from_secs(600));
    }
    let start = Instant::now();
    let report = check_determinism(graph, &options);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let (verdict, stats) = match &report {
        Ok(r) => {
            assert_eq!(
                r.is_deterministic(),
                expected_deterministic,
                "verdict drift on {workload}/n={n}/{config}"
            );
            (
                if r.is_deterministic() {
                    "deterministic"
                } else {
                    "nondeterministic"
                },
                r.stats(),
            )
        }
        Err(aborted) => {
            // In quick (CI-gate) mode every row is sized to complete; an
            // abort there IS the regression the gate exists to catch, so
            // it must fail the step rather than degrade to a row that
            // silently skips the verdict pin. Long local runs keep the
            // fig11b-style degrade-to-timeout behavior.
            assert!(
                !harness::is_quick(),
                "analysis aborted in quick mode on {workload}/n={n}/{config}: {aborted}"
            );
            ("timeout", Default::default())
        }
    };
    ExplorerBenchRow {
        workload: workload.to_string(),
        n,
        config: config.to_string(),
        wall_ms,
        verdict: verdict.to_string(),
        sequences_explored: stats.sequences_explored,
        sequences_skipped: stats.sequences_skipped,
        distinct_outputs: stats.distinct_outputs,
        solver_conflicts: stats.solver_conflicts,
        grounding_reuse_ratio: stats.grounding_reuse_ratio(),
    }
}

/// Serializes explorer rows via the shared `fleet::json` value model.
pub fn explorer_rows_to_json(generated_by: &str, rows: &[ExplorerBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("workload", Json::str(&r.workload)),
                ("n", Json::num(r.n as u32)),
                ("config", Json::str(&r.config)),
                ("wall_ms", Json::Num((r.wall_ms * 1000.0).round() / 1000.0)),
                ("verdict", Json::str(&r.verdict)),
                // f64 keeps large sequence/solver counters honest (the
                // naive rows cover factorial spaces past u32).
                ("sequences_explored", Json::Num(r.sequences_explored as f64)),
                ("sequences_skipped", Json::Num(r.sequences_skipped as f64)),
                ("distinct_outputs", Json::num(r.distinct_outputs as u32)),
                ("solver_conflicts", Json::Num(r.solver_conflicts as f64)),
                (
                    "grounding_reuse_ratio",
                    Json::Num((r.grounding_reuse_ratio * 10000.0).round() / 10000.0),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the explorer report to the path named by `REHEARSAL_BENCH_JSON`,
/// when set.
pub fn write_explorer_json(generated_by: &str, rows: &[ExplorerBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = explorer_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!("wrote explorer bench report to {}", path.to_string_lossy());
}

/// One row of the observability-overhead study (`obs_overhead`), for
/// `BENCH_obs.json`: the same workload measured with tracing *disabled*
/// (no session installed, so every instrumentation site reduces to one
/// relaxed atomic load) and *enabled* (session installed: spans, the
/// metrics registry, and sampled hot-path events all live), with the
/// verdict and work fingerprint pinned identical between the two
/// configurations.
#[derive(Debug, Clone)]
pub struct ObsBenchRow {
    /// Workload name.
    pub workload: String,
    /// Scale parameter (graph count for composite workloads).
    pub n: usize,
    /// Interleaved sample pairs behind each median.
    pub samples: usize,
    /// Median wall time with no session installed, ms.
    pub disabled_ms: f64,
    /// Median wall time with a session installed, ms.
    pub enabled_ms: f64,
    /// `(enabled − disabled) / disabled`, percent. The *enabling* cost;
    /// the disabled-mode cost over uninstrumented code is smaller still
    /// (disabled mode runs a strict subset of the enabled-mode
    /// instrumentation: the activity check alone). Medians of
    /// interleaved samples, so small negative values are timing noise.
    pub overhead_pct: f64,
    /// Verdict summary (`deterministic`, `nondeterministic`, or
    /// `<d> det / <n> nondet` for composite workloads).
    pub verdict: String,
    /// Total sequences covered per pass (identical in both configs).
    pub sequences_explored: u64,
    /// Per-phase wall times from one traced pass, ms — the registry's
    /// own attribution of where the workload spends its time.
    pub phases: Vec<(String, f64)>,
}

/// Measures one workload (a list of graphs with pinned verdicts) with
/// tracing disabled and enabled, interleaving the two configurations so
/// machine drift hits both medians equally. Panics if the verdict or the
/// work fingerprint (sequences, cache skips, outputs, conflicts) differs
/// between configurations — observability must be read-only.
pub fn measure_obs_row(
    workload: &str,
    n: usize,
    graphs: &[(FsGraph, bool)],
    options: &AnalysisOptions,
    samples: usize,
) -> ObsBenchRow {
    let mut options = options.clone();
    if options.timeout.is_none() {
        options.timeout = Some(Duration::from_secs(600));
    }
    let run = |traced: bool| {
        let session = traced.then(Session::new);
        let guard = session.as_ref().map(Session::install);
        let start = Instant::now();
        let mut fingerprint = Vec::with_capacity(graphs.len());
        for (graph, expected) in graphs {
            let report =
                check_determinism(graph, &options).expect("obs workloads are sized to complete");
            assert_eq!(
                report.is_deterministic(),
                *expected,
                "verdict drift on obs workload {workload}"
            );
            let s = report.stats();
            fingerprint.push((
                report.is_deterministic(),
                s.sequences_explored,
                s.sequences_skipped,
                s.distinct_outputs,
                s.solver_conflicts,
            ));
        }
        let wall = start.elapsed();
        drop(guard);
        (wall, fingerprint, session.map(|s| s.snapshot()))
    };
    // Warm both configurations up front: the interning arena, the
    // structural memos, and the package DB are process-global and
    // append-only, so after warmup every measured pass sees the same
    // world.
    run(false);
    run(true);
    let samples = samples.max(1);
    let mut disabled = Vec::with_capacity(samples);
    let mut enabled = Vec::with_capacity(samples);
    let mut snapshot: Option<TraceSnapshot> = None;
    let mut fingerprint = Vec::new();
    for _ in 0..samples {
        let (d, fd, _) = run(false);
        let (e, fe, snap) = run(true);
        assert_eq!(
            fd, fe,
            "work fingerprint drift between untraced and traced runs on {workload}"
        );
        disabled.push(d);
        enabled.push(e);
        if snapshot.is_none() {
            snapshot = snap;
            fingerprint = fd;
        }
    }
    disabled.sort();
    enabled.sort();
    let disabled_ms = disabled[samples / 2].as_secs_f64() * 1000.0;
    let enabled_ms = enabled[samples / 2].as_secs_f64() * 1000.0;
    let det = fingerprint.iter().filter(|f| f.0).count();
    let verdict = match (graphs.len(), det) {
        (1, 1) => "deterministic".to_string(),
        (1, 0) => "nondeterministic".to_string(),
        (total, det) => format!("{det} det / {} nondet", total - det),
    };
    ObsBenchRow {
        workload: workload.to_string(),
        n,
        samples,
        disabled_ms,
        enabled_ms,
        overhead_pct: if disabled_ms > 0.0 {
            (enabled_ms - disabled_ms) / disabled_ms * 100.0
        } else {
            0.0
        },
        verdict,
        sequences_explored: fingerprint.iter().map(|f| f.1 as u64).sum(),
        phases: snapshot
            .map(|s| {
                s.phase_totals()
                    .into_iter()
                    .map(|p| (p.name, p.total_us as f64 / 1000.0))
                    .collect()
            })
            .unwrap_or_default(),
    }
}

/// Serializes obs rows via the shared `fleet::json` value model.
pub fn obs_rows_to_json(generated_by: &str, rows: &[ObsBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let round = |v: f64| (v * 1000.0).round() / 1000.0;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("workload", Json::str(&r.workload)),
                ("n", Json::num(r.n as u32)),
                ("samples", Json::num(r.samples as u32)),
                ("disabled_ms", Json::Num(round(r.disabled_ms))),
                ("enabled_ms", Json::Num(round(r.enabled_ms))),
                ("overhead_pct", Json::Num(round(r.overhead_pct))),
                ("verdict", Json::str(&r.verdict)),
                ("sequences_explored", Json::Num(r.sequences_explored as f64)),
                (
                    "phases_ms",
                    Json::Obj(
                        r.phases
                            .iter()
                            .map(|(name, ms)| (name.clone(), Json::Num(round(*ms))))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        (
            "method",
            Json::str(
                "median of interleaved untraced/traced sample pairs after a warmup pass; \
                 verdicts and work fingerprints pinned identical between configurations \
                 (drift panics); phases_ms is the trace registry's own per-phase attribution \
                 from one traced pass",
            ),
        ),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the obs report to the path named by `REHEARSAL_BENCH_JSON`,
/// when set (CI uploads it as the `BENCH_obs.json` artifact).
pub fn write_obs_json(generated_by: &str, rows: &[ObsBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = obs_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!("wrote obs bench report to {}", path.to_string_lossy());
}

/// One measured scenario of the differential-verification bench
/// (`incremental_reuse`), for `BENCH_incremental.json` and the CI
/// bench-smoke artifact.
#[derive(Debug, Clone)]
pub struct IncrementalBenchRow {
    /// Scenario label (`cold`, `warm-cache`, `format-edit`, `attr-edit`,
    /// `metadata-cold`, `metadata-replay`).
    pub scenario: String,
    /// Wall time for the whole fleet run, milliseconds.
    pub wall_ms: f64,
    /// Manifests in the run.
    pub manifests: usize,
    /// Rows answered without analysis (cache or baseline replay).
    pub cached: usize,
    /// Deterministic / nondeterministic verdict counts (pinned; drift
    /// panics in the bench).
    pub deterministic: usize,
    /// See [`IncrementalBenchRow::deterministic`].
    pub nondeterministic: usize,
    /// Resources reused across the fleet (outside every dirty cone).
    pub resources_clean: u64,
    /// Resources re-analyzed (inside a dirty cone, or cold).
    pub resources_dirty: u64,
    /// Pair commutativity verdicts answered from the baseline.
    pub pairs_reused: u64,
}

/// Serializes incremental rows via the shared `fleet::json` value model.
pub fn incremental_rows_to_json(generated_by: &str, rows: &[IncrementalBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("scenario", Json::str(&r.scenario)),
                ("wall_ms", Json::Num((r.wall_ms * 1000.0).round() / 1000.0)),
                ("manifests", Json::num(r.manifests as u32)),
                ("cached", Json::num(r.cached as u32)),
                ("deterministic", Json::num(r.deterministic as u32)),
                ("nondeterministic", Json::num(r.nondeterministic as u32)),
                ("resources_clean", Json::Num(r.resources_clean as f64)),
                ("resources_dirty", Json::Num(r.resources_dirty as f64)),
                ("pairs_reused", Json::Num(r.pairs_reused as f64)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        (
            "method",
            Json::str(
                "one fleet run per scenario over the bundled suites; verdicts pinned \
                 (7 det / 6 nondet, metadata 3/3) and compared row-by-row against the \
                 cold run — any drift panics, so reuse can only change wall time",
            ),
        ),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the incremental report to the path named by
/// `REHEARSAL_BENCH_JSON`, when set (CI uploads it as the
/// `BENCH_incremental.json` artifact).
pub fn write_incremental_json(generated_by: &str, rows: &[IncrementalBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = incremental_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!(
        "wrote incremental bench report to {}",
        path.to_string_lossy()
    );
}

/// One measured scenario of the daemon-throughput bench
/// (`serve_throughput`), for `BENCH_serve.json` and the CI bench-smoke
/// artifact.
#[derive(Debug, Clone)]
pub struct ServeBenchRow {
    /// Scenario label (`engine-per-check`, `daemon-cold`, `daemon-warm`,
    /// `daemon-warm-4-clients`).
    pub scenario: String,
    /// Wall time for the whole scenario, milliseconds.
    pub wall_ms: f64,
    /// Check requests answered in the scenario.
    pub requests: usize,
    /// Throughput, requests per second.
    pub req_per_s: f64,
    /// Requests answered from the daemon's resident memo (no lowering).
    pub memo_hits: usize,
}

/// Serializes serve rows via the shared `fleet::json` value model.
pub fn serve_rows_to_json(generated_by: &str, rows: &[ServeBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("scenario", Json::str(&r.scenario)),
                ("wall_ms", Json::Num((r.wall_ms * 1000.0).round() / 1000.0)),
                ("requests", Json::num(r.requests as u32)),
                ("req_per_s", Json::Num((r.req_per_s * 10.0).round() / 10.0)),
                ("memo_hits", Json::num(r.memo_hits as u32)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        (
            "method",
            Json::str(
                "the bundled 13-benchmark suite sent as HTTP /v1/check requests against an \
                 in-process daemon (ephemeral port), cold then warm then warm from 4 \
                 concurrent clients, versus a fresh engine per check (the process-per-check \
                 cost floor, minus exec overhead); every response's verdict is pinned \
                 against the paper's (7 det / 6 nondet) — drift panics, so the warm core \
                 can only change wall time",
            ),
        ),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the serve report to the path named by `REHEARSAL_BENCH_JSON`,
/// when set (CI uploads it as the `BENCH_serve.json` artifact).
pub fn write_serve_json(generated_by: &str, rows: &[ServeBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = serve_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!("wrote serve bench report to {}", path.to_string_lossy());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_writers_explode_without_order() {
        let g = conflicting_writers(3);
        let r = check_determinism(&g, &options_full()).unwrap();
        assert!(!r.is_deterministic());
        assert!(
            r.stats().sequences_explored < 6,
            "early exit stops before covering all 3! orders"
        );
        // With early exit off, the explorer accounts for the whole space.
        let exhaustive = AnalysisOptions {
            early_exit: false,
            ..options_full()
        };
        let r = check_determinism(&g, &exhaustive).unwrap();
        assert!(!r.is_deterministic());
        assert!(r.stats().sequences_explored >= 6, "3! orders explored");
    }

    #[test]
    fn conflicting_packages_become_deterministic() {
        let (src, tool) = conflicting_packages_manifest(3);
        let graph = tool.lower(&src).unwrap();
        let r = check_determinism(&graph, &options_full()).unwrap();
        assert!(
            r.is_deterministic(),
            "final file resource fixes the content"
        );
        assert!(r.stats().sequences_explored > 1, "solver proves UNSAT");
    }

    #[test]
    fn option_presets_differ() {
        assert!(options_full().pruning);
        assert!(!options_no_pruning().pruning);
        assert!(!options_no_commutativity().commutativity);
    }
}
