//! Shared helpers for the figure-regeneration benches.
//!
//! Every bench prints the corresponding paper table/series to stdout
//! (`cargo bench` output) and then takes Criterion measurements of the
//! feasible configurations. `EXPERIMENTS.md` records paper-vs-measured.

pub mod harness;

use rehearsal::core::determinism::{
    check_determinism, AnalysisAborted, AnalysisOptions, DeterminismReport, FsGraph,
};
use rehearsal::fs::{ArenaStats, Content, Expr, FsPath, Pred};
use rehearsal::{Platform, Rehearsal};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// All reductions on (the paper's default configuration).
pub fn options_full() -> AnalysisOptions {
    AnalysisOptions::default()
}

/// Commutativity on, both §4.4 reductions (shrinking *and* elimination)
/// off — fig. 11b's "No" bars ("Shrinking and eliminating resources").
pub fn options_no_pruning() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Pruning off, commutativity off (fig. 11c's "No" bars; elimination is
/// commutativity-based so it is off implicitly).
pub fn options_no_commutativity() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        commutativity: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Commutativity on, pruning off (fig. 11c's "Yes" bars).
pub fn options_commutativity_only() -> AnalysisOptions {
    options_no_pruning()
}

/// Lowers a benchmark manifest to an [`FsGraph`] on Ubuntu.
pub fn lower(source: &str) -> FsGraph {
    Rehearsal::new(Platform::Ubuntu)
        .lower(source)
        .expect("benchmark manifests lower cleanly")
}

/// Runs one determinism check with a wall-clock budget, returning elapsed
/// time (or the abort).
pub fn timed_check(
    graph: &FsGraph,
    options: &AnalysisOptions,
    budget: Duration,
) -> Result<(Duration, DeterminismReport), AnalysisAborted> {
    let mut options = options.clone();
    options.timeout = Some(budget);
    let start = Instant::now();
    let report = check_determinism(graph, &options)?;
    Ok((start.elapsed(), report))
}

/// Formats a timing cell, using the paper's "Timeout" convention.
pub fn cell(result: &Result<(Duration, DeterminismReport), AnalysisAborted>) -> String {
    match result {
        Ok((t, _)) => format!("{:.3}s", t.as_secs_f64()),
        Err(_) => "Timeout".to_string(),
    }
}

/// The fig. 13 workload: `n` unordered file resources that all write the
/// same path (expressed directly in FS, as the paper notes it is not valid
/// Puppet).
pub fn conflicting_writers(n: usize) -> FsGraph {
    let f = FsPath::parse("/conflict/file").expect("static path");
    let parent = FsPath::parse("/conflict").expect("static path");
    let exprs: Vec<Expr> = (0..n)
        .map(|i| {
            let c = Content::intern(&format!("writer-{i}"));
            let ensure_parent = Expr::if_then(Pred::is_dir(parent).not(), Expr::mkdir(parent));
            ensure_parent.seq(Expr::if_(
                Pred::does_not_exist(f),
                Expr::create_file(f, c),
                Expr::if_(
                    Pred::is_file(f),
                    Expr::rm(f).seq(Expr::create_file(f, c)),
                    Expr::ERROR,
                ),
            ))
        })
        .collect();
    let names = (0..n).map(|i| format!("File[w{i}]")).collect();
    FsGraph::new(exprs, BTreeSet::new(), names)
}

/// The fig. 13 deterministic variant: `n` conflicting packages that all
/// create the same file, each ordered before a final `file` resource that
/// fixes the content — forcing the solver to prove unsatisfiability.
pub fn conflicting_packages_manifest(n: usize) -> (String, Rehearsal) {
    let mut src = String::new();
    for i in 1..=n {
        src.push_str(&format!(
            "package {{ 'A-{i}': ensure => present, before => File['/software/a'] }}\n"
        ));
    }
    src.push_str("file { '/software/a': content => 'x' }\n");
    let tool = Rehearsal::new(Platform::Ubuntu).with_db(rehearsal_pkgdb::conflict_db(n));
    (src, tool)
}

/// One measured row of a fig11-style bench, for the IR report
/// (`BENCH_ir.json`) and the CI bench-smoke artifact.
#[derive(Debug, Clone)]
pub struct IrBenchRow {
    /// Benchmark name (paper fig. 11 naming).
    pub bench: String,
    /// Analysis configuration (e.g. `pruning`, `no-pruning`).
    pub config: String,
    /// Mean wall time in milliseconds.
    pub wall_ms: f64,
    /// Verdict of the run (`deterministic` / `nondeterministic`).
    pub verdict: String,
    /// IR arena growth attributable to this *benchmark* (not this config:
    /// interning is driven by lowering plus the first analysis, so the
    /// same benchmark's rows share one growth figure). The caller diffs
    /// `arena_stats()` around the benchmark's first lowering + analysis in
    /// the process — later re-runs grow the arena by nothing (that is the
    /// point of hash-consing), so diffing a warm re-run would record
    /// zeros.
    pub arena: ArenaStats,
    /// Dedup ratio within this benchmark's own interning requests
    /// (config-independent, like [`IrBenchRow::arena`]).
    pub dedup_ratio: f64,
    /// Formula nodes allocated by the analysis (solver-side sharing).
    pub formula_nodes: usize,
}

/// Checks a verdict against the suite's pinned expectation, panicking on
/// drift — this is what makes the quick-mode bench a CI gate.
pub fn assert_verdict(bench: &str, expected_deterministic: bool, report: &DeterminismReport) {
    assert_eq!(
        report.is_deterministic(),
        expected_deterministic,
        "verdict drift on benchmark {bench}: expected deterministic={expected_deterministic}"
    );
}

/// Runs one benchmark under one configuration, measuring wall time and
/// verdict; panics on verdict drift. `arena_growth` is the arena delta the
/// caller observed around this benchmark's first lowering + analysis (see
/// [`IrBenchRow::arena`]).
pub fn measure_ir_row(
    bench: &rehearsal::benchmarks::Benchmark,
    config: &str,
    options: &AnalysisOptions,
    samples: usize,
    arena_growth: ArenaStats,
) -> IrBenchRow {
    let graph = lower(bench.source);
    // Always run under a wall-clock budget so a regression cannot hang the
    // CI smoke step; an abort degrades to a "timeout" row (as the fig11b
    // table does) instead of panicking.
    let mut options = options.clone();
    if options.timeout.is_none() {
        options.timeout = Some(Duration::from_secs(600));
    }
    let mut total = Duration::ZERO;
    let mut report = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        report = check_determinism(&graph, &options).ok();
        total += start.elapsed();
    }
    let verdict = match &report {
        Some(r) => {
            assert_verdict(bench.name, bench.deterministic, r);
            if r.is_deterministic() {
                "deterministic"
            } else {
                "nondeterministic"
            }
        }
        None => "timeout",
    };
    IrBenchRow {
        bench: bench.name.to_string(),
        config: config.to_string(),
        wall_ms: total.as_secs_f64() * 1000.0 / samples.max(1) as f64,
        verdict: verdict.to_string(),
        arena: arena_growth,
        dedup_ratio: arena_growth.dedup_ratio(),
        formula_nodes: report.map(|r| r.stats().formula_nodes).unwrap_or(0),
    }
}

/// Serializes rows as a stable JSON document via the shared
/// [`rehearsal::fleet::json::Json`] value model (the same serializer the
/// fleet report and the CLI `--json` modes use).
pub fn ir_rows_to_json(generated_by: &str, rows: &[IrBenchRow]) -> String {
    use rehearsal::fleet::json::Json;
    let results: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("bench", Json::str(&r.bench)),
                ("config", Json::str(&r.config)),
                ("wall_ms", Json::Num((r.wall_ms * 1000.0).round() / 1000.0)),
                ("verdict", Json::str(&r.verdict)),
                ("arena_expr_nodes", Json::num(r.arena.expr_nodes as u32)),
                ("arena_pred_nodes", Json::num(r.arena.pred_nodes as u32)),
                (
                    "arena_dedup_ratio",
                    Json::Num((r.dedup_ratio * 10000.0).round() / 10000.0),
                ),
                ("formula_nodes", Json::num(r.formula_nodes as u32)),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("generated_by", Json::str(generated_by)),
        ("results", Json::Arr(results)),
    ]);
    doc.render_pretty()
}

/// Writes the IR report to the path named by `REHEARSAL_BENCH_JSON`, when
/// set (the CI bench-smoke step uploads it as an artifact).
pub fn write_ir_json(generated_by: &str, rows: &[IrBenchRow]) {
    let Some(path) = std::env::var_os("REHEARSAL_BENCH_JSON") else {
        return;
    };
    let json = ir_rows_to_json(generated_by, rows);
    std::fs::write(&path, json).expect("write REHEARSAL_BENCH_JSON");
    println!("wrote IR bench report to {}", path.to_string_lossy());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_writers_explode_without_order() {
        let g = conflicting_writers(3);
        let r = check_determinism(&g, &options_full()).unwrap();
        assert!(!r.is_deterministic());
        assert!(r.stats().sequences_explored >= 6, "3! orders explored");
    }

    #[test]
    fn conflicting_packages_become_deterministic() {
        let (src, tool) = conflicting_packages_manifest(3);
        let graph = tool.lower(&src).unwrap();
        let r = check_determinism(&graph, &options_full()).unwrap();
        assert!(
            r.is_deterministic(),
            "final file resource fixes the content"
        );
        assert!(r.stats().sequences_explored > 1, "solver proves UNSAT");
    }

    #[test]
    fn option_presets_differ() {
        assert!(options_full().pruning);
        assert!(!options_no_pruning().pruning);
        assert!(!options_no_commutativity().commutativity);
    }
}
