//! Shared helpers for the figure-regeneration benches.
//!
//! Every bench prints the corresponding paper table/series to stdout
//! (`cargo bench` output) and then takes Criterion measurements of the
//! feasible configurations. `EXPERIMENTS.md` records paper-vs-measured.

pub mod harness;

use rehearsal::core::determinism::{
    check_determinism, AnalysisAborted, AnalysisOptions, DeterminismReport, FsGraph,
};
use rehearsal::fs::{Content, Expr, FsPath, Pred};
use rehearsal::{Platform, Rehearsal};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// All reductions on (the paper's default configuration).
pub fn options_full() -> AnalysisOptions {
    AnalysisOptions::default()
}

/// Commutativity on, both §4.4 reductions (shrinking *and* elimination)
/// off — fig. 11b's "No" bars ("Shrinking and eliminating resources").
pub fn options_no_pruning() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Pruning off, commutativity off (fig. 11c's "No" bars; elimination is
/// commutativity-based so it is off implicitly).
pub fn options_no_commutativity() -> AnalysisOptions {
    AnalysisOptions {
        pruning: false,
        commutativity: false,
        elimination: false,
        ..AnalysisOptions::default()
    }
}

/// Commutativity on, pruning off (fig. 11c's "Yes" bars).
pub fn options_commutativity_only() -> AnalysisOptions {
    options_no_pruning()
}

/// Lowers a benchmark manifest to an [`FsGraph`] on Ubuntu.
pub fn lower(source: &str) -> FsGraph {
    Rehearsal::new(Platform::Ubuntu)
        .lower(source)
        .expect("benchmark manifests lower cleanly")
}

/// Runs one determinism check with a wall-clock budget, returning elapsed
/// time (or the abort).
pub fn timed_check(
    graph: &FsGraph,
    options: &AnalysisOptions,
    budget: Duration,
) -> Result<(Duration, DeterminismReport), AnalysisAborted> {
    let mut options = options.clone();
    options.timeout = Some(budget);
    let start = Instant::now();
    let report = check_determinism(graph, &options)?;
    Ok((start.elapsed(), report))
}

/// Formats a timing cell, using the paper's "Timeout" convention.
pub fn cell(result: &Result<(Duration, DeterminismReport), AnalysisAborted>) -> String {
    match result {
        Ok((t, _)) => format!("{:.3}s", t.as_secs_f64()),
        Err(_) => "Timeout".to_string(),
    }
}

/// The fig. 13 workload: `n` unordered file resources that all write the
/// same path (expressed directly in FS, as the paper notes it is not valid
/// Puppet).
pub fn conflicting_writers(n: usize) -> FsGraph {
    let f = FsPath::parse("/conflict/file").expect("static path");
    let parent = FsPath::parse("/conflict").expect("static path");
    let exprs: Vec<Expr> = (0..n)
        .map(|i| {
            let c = Content::intern(&format!("writer-{i}"));
            let ensure_parent = Expr::if_then(Pred::IsDir(parent).not(), Expr::Mkdir(parent));
            ensure_parent.seq(Expr::if_(
                Pred::DoesNotExist(f),
                Expr::CreateFile(f, c),
                Expr::if_(
                    Pred::IsFile(f),
                    Expr::Rm(f).seq(Expr::CreateFile(f, c)),
                    Expr::Error,
                ),
            ))
        })
        .collect();
    let names = (0..n).map(|i| format!("File[w{i}]")).collect();
    FsGraph::new(exprs, BTreeSet::new(), names)
}

/// The fig. 13 deterministic variant: `n` conflicting packages that all
/// create the same file, each ordered before a final `file` resource that
/// fixes the content — forcing the solver to prove unsatisfiability.
pub fn conflicting_packages_manifest(n: usize) -> (String, Rehearsal) {
    let mut src = String::new();
    for i in 1..=n {
        src.push_str(&format!(
            "package {{ 'A-{i}': ensure => present, before => File['/software/a'] }}\n"
        ));
    }
    src.push_str("file { '/software/a': content => 'x' }\n");
    let tool = Rehearsal::new(Platform::Ubuntu).with_db(rehearsal_pkgdb::conflict_db(n));
    (src, tool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_writers_explode_without_order() {
        let g = conflicting_writers(3);
        let r = check_determinism(&g, &options_full()).unwrap();
        assert!(!r.is_deterministic());
        assert!(r.stats().sequences_explored >= 6, "3! orders explored");
    }

    #[test]
    fn conflicting_packages_become_deterministic() {
        let (src, tool) = conflicting_packages_manifest(3);
        let graph = tool.lower(&src).unwrap();
        let r = check_determinism(&graph, &options_full()).unwrap();
        assert!(
            r.is_deterministic(),
            "final file resource fixes the content"
        );
        assert!(r.stats().sequences_explored > 1, "solver proves UNSAT");
    }

    #[test]
    fn option_presets_differ() {
        assert!(options_full().pruning);
        assert!(!options_no_pruning().pruning);
        assert!(!options_no_commutativity().commutativity);
    }
}
