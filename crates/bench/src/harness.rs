//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API the figure benches use. The container image has no crates.io
//! access, so the benches run on this shim: each benchmark closure is
//! timed over `sample_size` samples and the mean/min are printed in a
//! criterion-like format.

use std::time::{Duration, Instant};

/// Whether quick mode is enabled (`REHEARSAL_BENCH_QUICK=1`): sample
/// counts are clamped to 2 so the bench suite doubles as a CI smoke test.
pub fn is_quick() -> bool {
    std::env::var_os("REHEARSAL_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            samples: 10,
        }
    }
}

/// A named group of related measurements.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to take per benchmark (clamped to 2 in quick
    /// mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = if is_quick() { n.clamp(1, 2) } else { n.max(1) };
        self
    }

    /// Measures one closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.samples),
        };
        for _ in 0..self.samples {
            f(&mut b);
        }
        b.report(&id.to_string());
        self
    }

    /// Measures one closure that receives an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.samples),
        };
        for _ in 0..self.samples {
            f(&mut b, input);
        }
        b.report(&id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "  {id:<40} mean {:>10.3?}  min {:>10.3?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Identifies one parameterized benchmark, e.g. `n = 4`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id whose display form is the parameter itself.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Declares the list of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
