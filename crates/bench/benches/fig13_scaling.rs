//! Figure 13 scaling study for the fast explorer core: chains of `n`
//! independent + `n` dependent resources, the factorial writer workload,
//! and the UNSAT package workload, each measured with the verdict pinned
//! (drift panics — wall time never fails the bench).
//!
//! Rows are exported as JSON via the shared `fleet::json` serializer when
//! `REHEARSAL_BENCH_JSON` is set; CI uploads them as the
//! `BENCH_explorer.json` artifact.

use rehearsal::core::determinism::{check_determinism, AnalysisOptions};
use rehearsal_bench::harness::{is_quick, BenchmarkId, Criterion};
use rehearsal_bench::{
    conflicting_packages_manifest, conflicting_writers, measure_explorer_row, options_full,
    options_no_commutativity, scaling_chain, write_explorer_json, ExplorerBenchRow,
};
use rehearsal_bench::{criterion_group, criterion_main};

fn print_table() {
    println!("\n=== Figure 13 (scaling): explorer core workloads ===");
    println!(
        "{:<16} {:<4} {:<14} {:>10} {:>10} {:>8} {:>8}  verdict",
        "workload", "n", "config", "wall", "seqs", "skipped", "outputs"
    );
    let max_n = if is_quick() { 5 } else { 8 };
    let mut rows: Vec<ExplorerBenchRow> = Vec::new();
    let mut push = |row: ExplorerBenchRow| {
        println!(
            "{:<16} {:<4} {:<14} {:>8.2}ms {:>10} {:>8} {:>8}  {}",
            row.workload,
            row.n,
            row.config,
            row.wall_ms,
            row.sequences_explored,
            row.sequences_skipped,
            row.distinct_outputs,
            row.verdict
        );
        rows.push(row);
    };

    for n in 2..=max_n {
        // n independent + n dependent resources; POR collapses the space.
        let g = scaling_chain(n);
        push(measure_explorer_row(
            "mixed-chain",
            n,
            "full",
            &g,
            &options_full(),
            true,
        ));
        // The naive ablation covers all interleavings of the independent
        // half plus the chain; the state cache collapses the *evaluation*
        // to the subset lattice while the *logical* sequence count stays
        // factorial — so lift the sequence safety-valve, which counts
        // logical coverage, out of the way.
        let naive = AnalysisOptions {
            max_sequences: usize::MAX,
            ..options_no_commutativity()
        };
        push(measure_explorer_row(
            "mixed-chain",
            n,
            "naive",
            &g,
            &naive,
            true,
        ));
        // n unordered writers to one path: nondeterministic, where the
        // incremental early-exit check stops the factorial walk.
        let w = conflicting_writers(n);
        push(measure_explorer_row(
            "writers",
            n,
            "full",
            &w,
            &options_full(),
            false,
        ));
        // n conflicting packages fixed by a final file resource:
        // deterministic, so the solver must prove every pairwise
        // difference UNSAT — the grounding-reuse showcase. Capped at
        // n = 6 (the paper's own fig. 13 cutoff) to keep the full bench
        // tolerable.
        if n <= 6 {
            let (src, tool) = conflicting_packages_manifest(n);
            let graph = tool.lower(&src).expect("lowering");
            push(measure_explorer_row(
                "packages-unsat",
                n,
                "full",
                &graph,
                &options_full(),
                true,
            ));
        }
    }
    write_explorer_json("fig13_scaling", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig13_scaling_mixed_chain");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let g = scaling_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bench, g| {
            bench.iter(|| check_determinism(g, &options_full()).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig13_scaling_writers_early_exit");
    group.sample_size(10);
    for n in [4usize, 6] {
        let g = conflicting_writers(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bench, g| {
            bench.iter(|| check_determinism(g, &options_full()).unwrap())
        });
    }
    group.finish();

    // Deep chains must not overflow the stack now that the DFS is
    // explicit; this is a smoke-level guarantee, not a timing series.
    // Elimination is disabled so the full 2n-deep prefix is actually
    // walked (with it on, the whole chain is provably removable), and POR
    // still collapses the walk to a single sequence.
    let deep = scaling_chain(if is_quick() { 256 } else { 512 });
    let deep_options = rehearsal_bench::options_no_pruning();
    let mut group = c.benchmark_group("fig13_scaling_deep_chain");
    group.sample_size(2);
    group.bench_function("deep", |bench| {
        bench.iter(|| {
            let r = check_determinism(&deep, &deep_options).unwrap();
            assert!(r.is_deterministic());
            assert_eq!(r.stats().sequences_explored, 1, "POR commits every step");
            r.stats().sequences_explored
        })
    });
    group.finish();

    // State-cache ablation at a scale where the cache-free walk is still
    // feasible: n = 4 → 1 680 logical interleavings, n = 5 → 30 240.
    let mut group = c.benchmark_group("fig13_scaling_state_cache_ablation");
    group.sample_size(5);
    let n = if is_quick() { 4 } else { 5 };
    let g = scaling_chain(n);
    group.bench_function(format!("n={n}/cache-on"), |bench| {
        bench.iter(|| check_determinism(&g, &options_no_commutativity()).unwrap())
    });
    let no_cache = AnalysisOptions {
        state_cache: false,
        ..options_no_commutativity()
    };
    group.bench_function(format!("n={n}/cache-off"), |bench| {
        bench.iter(|| check_determinism(&g, &no_cache).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
