//! Figure 11a: paths per state, with and without pruning, for each of the
//! 13 third-party benchmarks.
//!
//! The paper's bar chart shows pruning collapsing hundreds-to-thousands of
//! modeled paths to a fraction. This bench prints the same series and then
//! measures the cost of computing the pruned encoding.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{criterion_group, criterion_main};
use rehearsal_bench::{lower, options_full, options_no_pruning};

fn print_table() {
    println!("\n=== Figure 11a: paths per state (pruned vs not) ===");
    println!("{:<18} {:>12} {:>12}", "benchmark", "unpruned", "pruned");
    for b in SUITE {
        let graph = lower(b.source);
        // Disable elimination in both configurations so the path counts
        // reflect pruning alone (as in the paper's figure, which varies
        // only the pruning axis).
        let mut no_prune = options_no_pruning();
        no_prune.elimination = false;
        let mut prune = options_full();
        prune.elimination = false;
        let unpruned = check_determinism(&graph, &no_prune)
            .map(|r| r.stats().tracked_paths)
            .unwrap_or(0);
        let pruned = check_determinism(&graph, &prune)
            .map(|r| r.stats().tracked_paths)
            .unwrap_or(0);
        println!("{:<18} {:>12} {:>12}", b.name, unpruned, pruned);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig11a_encoding");
    group.sample_size(10);
    for name in ["ntp-nondet", "nginx", "amavis"] {
        let b = rehearsal::benchmarks::by_name(name).unwrap();
        let graph = lower(b.source);
        group.bench_function(format!("{name}/pruned"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_full()).unwrap())
        });
        group.bench_function(format!("{name}/unpruned"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_no_pruning()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
