//! Figure 11a: paths per state, with and without pruning, for each of the
//! 13 third-party benchmarks — plus hash-consed IR arena statistics
//! (node counts and dedup ratio) for the same workloads.
//!
//! The paper's bar chart shows pruning collapsing hundreds-to-thousands of
//! modeled paths to a fraction. This bench prints the same series, reports
//! how much the arena shares, and then measures the cost of computing the
//! pruned encoding. In quick mode (`REHEARSAL_BENCH_QUICK=1`) it doubles
//! as a CI smoke test: any panic or verdict drift fails the run, and the
//! measured rows are written to `REHEARSAL_BENCH_JSON` when set.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal::fs::arena_stats;
use rehearsal_bench::harness::{is_quick, Criterion};
use rehearsal_bench::{criterion_group, criterion_main};
use rehearsal_bench::{lower, measure_ir_row, options_full, options_no_pruning, write_ir_json};

fn print_table() {
    println!("\n=== Figure 11a: paths per state (pruned vs not) ===");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "benchmark", "unpruned", "pruned", "expr nodes", "pred nodes", "dedup"
    );
    let mut rows = Vec::new();
    for b in SUITE {
        let snapshot = arena_stats();
        let graph = lower(b.source);
        // Disable elimination in both configurations so the path counts
        // reflect pruning alone (as in the paper's figure, which varies
        // only the pruning axis).
        let mut no_prune = options_no_pruning();
        no_prune.elimination = false;
        let mut prune = options_full();
        prune.elimination = false;
        let unpruned = check_determinism(&graph, &no_prune)
            .map(|r| r.stats().tracked_paths)
            .unwrap_or(0);
        let pruned = check_determinism(&graph, &prune)
            .map(|r| r.stats().tracked_paths)
            .unwrap_or(0);
        let grown = arena_stats().since(&snapshot);
        println!(
            "{:<18} {:>12} {:>12} {:>12} {:>12} {:>7.1}%",
            b.name,
            unpruned,
            pruned,
            grown.expr_nodes,
            grown.pred_nodes,
            grown.dedup_ratio() * 100.0
        );
        // Measured row (also asserts the pinned verdict); the arena delta
        // observed around this benchmark's first run above is the honest
        // per-benchmark growth — re-measuring around a warm re-run would
        // record zeros.
        rows.push(measure_ir_row(b, "full", &options_full(), 1, grown));
    }
    let total = arena_stats();
    println!(
        "arena total: {} expr nodes, {} pred nodes, dedup ratio {:.1}% \
         ({} of {} intern requests shared)",
        total.expr_nodes,
        total.pred_nodes,
        total.dedup_ratio() * 100.0,
        total.expr_dedup_hits + total.pred_dedup_hits,
        total.requests(),
    );
    write_ir_json("fig11a_paths", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig11a_encoding");
    group.sample_size(10);
    let subset: &[&str] = if is_quick() {
        &["ntp-nondet", "nginx"]
    } else {
        &["ntp-nondet", "nginx", "amavis"]
    };
    for name in subset {
        let b = rehearsal::benchmarks::by_name(name).unwrap();
        let graph = lower(b.source);
        group.bench_function(format!("{name}/pruned"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_full()).unwrap())
        });
        group.bench_function(format!("{name}/unpruned"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_no_pruning()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
