//! Fleet throughput: manifests/second for the batch engine over the
//! 13-benchmark suite, at increasing worker counts, plus the warm-cache
//! fast path.
//!
//! This is the acceptance benchmark for the `rehearsal-fleet` engine: it
//! records the jobs=1 → jobs=N scaling (bounded by the machine's core
//! count) and shows the verdict cache answering a warm fleet in
//! microseconds.

use rehearsal::fleet::{FleetEngine, FleetJob, FleetOptions};
use rehearsal::{benchmarks::SUITE, Platform};
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{criterion_group, criterion_main};
use std::time::Instant;

fn suite_jobs() -> Vec<FleetJob> {
    SUITE
        .iter()
        .map(|b| FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        })
        .collect()
}

fn print_table() {
    println!("\n=== Fleet throughput: 13-benchmark suite ===");
    println!(
        "{:<14} {:>10} {:>14} {:>12}",
        "config", "wall", "manifests/s", "verdicts"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut worker_counts = vec![1, 2, 4];
    worker_counts.retain(|&w| w == 1 || w <= cores.max(2));
    for jobs in worker_counts {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(jobs));
        let start = Instant::now();
        let report = engine.run(suite_jobs());
        let wall = start.elapsed();
        let c = report.counts();
        println!(
            "{:<14} {:>10.3?} {:>14.1} {:>12}",
            format!("jobs={jobs}"),
            wall,
            report.rows.len() as f64 / wall.as_secs_f64(),
            format!("{}det/{}nondet", c.deterministic, c.nondeterministic),
        );
        assert_eq!(
            c.deterministic, 7,
            "fleet must reproduce the paper's verdicts"
        );
        assert_eq!(c.nondeterministic, 6);
    }

    // Warm-cache rerun: all 13 answered without re-analysis.
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
    engine.run(suite_jobs());
    let start = Instant::now();
    let warm = engine.run(suite_jobs());
    let wall = start.elapsed();
    assert_eq!(warm.counts().cached, 13, "warm run must be pure cache hits");
    println!(
        "{:<14} {:>10.3?} {:>14.1} {:>12}",
        "warm cache",
        wall,
        warm.rows.len() as f64 / wall.as_secs_f64(),
        "13 cached",
    );
    println!("(cores available: {cores})\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);
    group.bench_function("suite/jobs=1", |b| {
        b.iter(|| {
            let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
            engine.run(suite_jobs())
        })
    });
    group.bench_function("suite/jobs=4", |b| {
        b.iter(|| {
            let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(4));
            engine.run(suite_jobs())
        })
    });
    group.bench_function("suite/warm-cache", |b| {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        engine.run(suite_jobs());
        b.iter(|| engine.run(suite_jobs()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
