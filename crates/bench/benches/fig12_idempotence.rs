//! Figure 12: idempotence-check time on all 13 benchmarks (the fixed
//! versions of the six buggy ones, as in the paper).
//!
//! Paper claim: under one second for every benchmark.

use rehearsal::benchmarks::FIXED_SUITE;
use rehearsal::core::idempotence::check_idempotence;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{criterion_group, criterion_main};
use rehearsal_bench::{lower, options_full};
use std::time::Instant;

fn print_table() {
    println!("\n=== Figure 12: idempotence-check time ===");
    println!("{:<18} {:>12}  verdict", "benchmark", "time");
    for b in FIXED_SUITE {
        let graph = lower(b.source);
        let start = Instant::now();
        let report = check_idempotence(&graph, &options_full()).expect("no abort");
        println!(
            "{:<18} {:>11.3}s  {}",
            b.name,
            start.elapsed().as_secs_f64(),
            if report.is_idempotent() {
                "idempotent"
            } else {
                "NOT idempotent"
            }
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for b in FIXED_SUITE {
        let graph = lower(b.source);
        group.bench_function(b.name, |bench| {
            bench.iter(|| check_idempotence(&graph, &options_full()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
