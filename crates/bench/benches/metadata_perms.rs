//! The metadata permission-race suite (`benchmarks-metadata/`), measured
//! as a before/after pair per manifest: the metadata-free model ("before",
//! where every race is invisible and all six manifests verify clean) and
//! the metadata-aware model ("after", where the three `-nondet` manifests
//! report NONDET and their `->`-fixed twins stay deterministic).
//!
//! Every row pins its verdict — drift panics, which is what makes the
//! quick-mode run a CI gate; wall time never fails the bench. Rows are
//! exported via the shared `fleet::json` serializer when
//! `REHEARSAL_BENCH_JSON` is set; CI uploads them as `BENCH_metadata.json`.

use rehearsal::benchmarks::METADATA_SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal::{Platform, Rehearsal};
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{criterion_group, criterion_main};
use rehearsal_bench::{measure_explorer_row, options_full, write_explorer_json, ExplorerBenchRow};

fn lower(source: &str, model_metadata: bool) -> rehearsal::FsGraph {
    Rehearsal::new(Platform::Ubuntu)
        .with_model_metadata(model_metadata)
        .lower(source)
        .expect("metadata benchmarks lower cleanly")
}

fn print_table() {
    println!("\n=== Metadata permission races: before (model off) / after (model on) ===");
    println!(
        "{:<22} {:<14} {:>10} {:>8} {:>8}  verdict",
        "benchmark", "config", "wall", "seqs", "outputs"
    );
    let mut rows: Vec<ExplorerBenchRow> = Vec::new();
    for b in METADATA_SUITE {
        for (config, model_on, expect_det) in [
            // Before: metadata dropped — every race is invisible.
            ("metadata-off", false, true),
            // After: the pinned metadata-aware verdict.
            ("metadata-on", true, b.deterministic_with_metadata),
        ] {
            let graph = lower(b.source, model_on);
            let row = measure_explorer_row(b.name, 0, config, &graph, &options_full(), expect_det);
            println!(
                "{:<22} {:<14} {:>8.2}ms {:>8} {:>8}  {}",
                row.workload,
                row.config,
                row.wall_ms,
                row.sequences_explored,
                row.distinct_outputs,
                row.verdict
            );
            rows.push(row);
        }
    }
    write_explorer_json("metadata_perms", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("metadata_perms");
    group.sample_size(10);
    for b in METADATA_SUITE {
        let graph = lower(b.source, true);
        let expected = b.deterministic_with_metadata;
        group.bench_with_input(b.name, &graph, |bench, g| {
            bench.iter(|| {
                let r = check_determinism(g, &options_full()).unwrap();
                assert_eq!(
                    r.is_deterministic(),
                    expected,
                    "verdict drift on {}",
                    b.name
                );
                r.stats().sequences_explored
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
