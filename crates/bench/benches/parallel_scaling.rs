//! Multi-core scaling study for the parallel POR explorer: the
//! `fig13_scaling` workloads re-measured at 1, 2, and 4 explorer
//! threads, with the verdict pinned per row (drift panics — wall time
//! never fails the bench) and the thread-count-invariant counters
//! compared against the sequential row.
//!
//! Rows are exported as JSON via the shared `fleet::json` serializer
//! when `REHEARSAL_BENCH_JSON` is set; CI uploads them as the
//! `BENCH_parallel.json` artifact. On many-core machines the wall-time
//! column is the speedup figure; on the 1–2 core CI runners the value
//! of this bench is the invariance pin, not the speedup.

use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::{is_quick, BenchmarkId, Criterion};
use rehearsal_bench::{
    conflicting_writers, measure_explorer_row, options_full, scaling_chain, write_explorer_json,
    ExplorerBenchRow,
};
use rehearsal_bench::{criterion_group, criterion_main};

fn print_table() {
    println!("\n=== Parallel explorer scaling: fig13 workloads × threads ===");
    println!(
        "{:<16} {:<4} {:<14} {:>10} {:>10} {:>8} {:>8}  verdict",
        "workload", "n", "config", "wall", "seqs", "skipped", "outputs"
    );
    let max_n = if is_quick() { 5 } else { 8 };
    let mut rows: Vec<ExplorerBenchRow> = Vec::new();
    let mut push = |row: ExplorerBenchRow| {
        println!(
            "{:<16} {:<4} {:<14} {:>8.2}ms {:>10} {:>8} {:>8}  {}",
            row.workload,
            row.n,
            row.config,
            row.wall_ms,
            row.sequences_explored,
            row.sequences_skipped,
            row.distinct_outputs,
            row.verdict
        );
        rows.push(row);
    };

    for n in 2..=max_n {
        // n independent + n dependent resources, deterministic: the POR
        // frontier genuinely forks, so subtrees spread across workers.
        let chain = scaling_chain(n);
        // n unordered writers to one path, nondeterministic: exercises
        // the racy early-exit/cancellation path at every thread count.
        let writers = conflicting_writers(n);
        let mut baseline: Option<(usize, usize)> = None;
        for threads in [1usize, 2, 4] {
            let options = options_full().with_threads(threads);
            let row = measure_explorer_row(
                "mixed-chain",
                n,
                &format!("threads-{threads}"),
                &chain,
                &options,
                true,
            );
            // The invariance pin: logical coverage and the canonical
            // output set must not depend on the thread count.
            let key = (row.sequences_explored, row.distinct_outputs);
            match baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    key, b,
                    "thread-count-dependent counters on mixed-chain/n={n}/threads={threads}"
                ),
            }
            push(row);
            push(measure_explorer_row(
                "writers",
                n,
                &format!("threads-{threads}"),
                &writers,
                &options,
                false,
            ));
        }
    }
    write_explorer_json("parallel_scaling", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let n = if is_quick() { 5 } else { 8 };
    let g = scaling_chain(n);
    let mut group = c.benchmark_group("parallel_scaling_mixed_chain");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let options = options_full().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &options,
            |bench, options| bench.iter(|| check_determinism(&g, options).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
