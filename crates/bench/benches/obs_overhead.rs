//! Observability-overhead study: the fig13 workloads and the bundled
//! paper suite, each run with tracing disabled (no session — every
//! instrumentation site is one relaxed atomic load) and enabled (session
//! installed: spans, the metrics registry, sampled hot-path events).
//! Verdicts and work fingerprints are pinned identical between the two
//! configurations — drift panics, making this a CI gate on the
//! "observability is read-only" invariant.
//!
//! Rows are exported via `REHEARSAL_BENCH_JSON` as `BENCH_obs.json`; the
//! `phases_ms` object in each row is the registry's own per-phase
//! attribution of where the workload spends its time.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::{check_determinism, AnalysisOptions, FsGraph};
use rehearsal::trace::Session;
use rehearsal_bench::harness::{is_quick, Criterion};
use rehearsal_bench::{
    conflicting_packages_manifest, lower, measure_obs_row, options_full, options_no_commutativity,
    scaling_chain, write_obs_json, ObsBenchRow,
};
use rehearsal_bench::{criterion_group, criterion_main};

/// The fig13 mixed-chain naive ablation: POR off, the sequence
/// safety-valve lifted, so the explorer walks the full logical space
/// (665 280 interleavings at n = 6) through the state cache — the DFS
/// hot loop where the sampled events and cache counters live.
fn naive() -> AnalysisOptions {
    AnalysisOptions {
        max_sequences: usize::MAX,
        ..options_no_commutativity()
    }
}

fn print_table() {
    println!("\n=== Observability overhead: tracing disabled vs enabled ===");
    println!(
        "{:<18} {:<4} {:>12} {:>12} {:>9}  verdict",
        "workload", "n", "disabled", "enabled", "overhead"
    );
    let samples = if is_quick() { 5 } else { 15 };
    let mut rows: Vec<ObsBenchRow> = Vec::new();
    let mut push = |row: ObsBenchRow| {
        println!(
            "{:<18} {:<4} {:>10.2}ms {:>10.2}ms {:>8.2}%  {}",
            row.workload, row.n, row.disabled_ms, row.enabled_ms, row.overhead_pct, row.verdict
        );
        rows.push(row);
    };

    // Explorer-bound: the state cache answers 99.999% of the logical
    // space, so the per-iteration instrumentation check dominates any
    // overhead that exists.
    push(measure_obs_row(
        "mixed-chain-naive",
        6,
        &[(scaling_chain(6), true)],
        &naive(),
        samples,
    ));

    // Solver-bound: n conflicting packages fixed by a final file
    // resource force pairwise UNSAT proofs — the CDCL loop with its
    // sampled conflict events and grounding counters.
    let (src, tool) = conflicting_packages_manifest(6);
    let packages = tool.lower(&src).expect("lowering");
    push(measure_obs_row(
        "packages-unsat",
        6,
        &[(packages, true)],
        &options_full(),
        samples,
    ));

    // The bundled paper suite end to end under the default
    // configuration: 7 deterministic / 6 nondeterministic, the same pin
    // the integration tests hold.
    let suite: Vec<(FsGraph, bool)> = SUITE
        .iter()
        .map(|b| (lower(b.source), b.deterministic))
        .collect();
    push(measure_obs_row(
        "paper-suite",
        suite.len(),
        &suite,
        &options_full(),
        samples,
    ));

    write_obs_json("obs_overhead", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();

    // Criterion series over the explorer-bound workload, one function
    // per configuration, verdict asserted inside the timed body.
    let g = scaling_chain(6);
    let options = naive();
    let mut group = c.benchmark_group("obs_overhead_mixed_chain");
    group.sample_size(10);
    group.bench_function("trace-off", |bench| {
        bench.iter(|| {
            let r = check_determinism(&g, &options).unwrap();
            assert!(r.is_deterministic());
            r.stats().sequences_explored
        })
    });
    group.bench_function("trace-on", |bench| {
        bench.iter(|| {
            let session = Session::new();
            let _guard = session.install();
            let r = check_determinism(&g, &options).unwrap();
            assert!(r.is_deterministic());
            r.stats().sequences_explored
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
