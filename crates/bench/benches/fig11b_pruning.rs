//! Figure 11b: determinacy-analysis time with and without pruning
//! (commutativity checking enabled in both configurations).
//!
//! Paper claim: with commutativity + pruning, every benchmark completes in
//! under two seconds; without pruning, some exceed the budget. Verdicts
//! are asserted against the suite's pinned expectations, so a drift fails
//! the bench; the measured rows (wall time + arena statistics) go to
//! `REHEARSAL_BENCH_JSON` when set.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{
    assert_verdict, cell, lower, measure_ir_row, options_full, options_no_pruning, timed_check,
    write_ir_json,
};
use rehearsal_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn print_table() {
    println!("\n=== Figure 11b: determinism-check time (pruning ablation) ===");
    println!(
        "{:<18} {:>12} {:>12}  verdict",
        "benchmark", "no pruning", "pruning"
    );
    let budget = Duration::from_secs(600);
    let mut rows = Vec::new();
    for b in SUITE {
        let snapshot = rehearsal::fs::arena_stats();
        let graph = lower(b.source);
        let without = timed_check(&graph, &options_no_pruning(), budget);
        let with = timed_check(&graph, &options_full(), budget);
        let grown = rehearsal::fs::arena_stats().since(&snapshot);
        let verdict = match &with {
            Ok((_, r)) => {
                assert_verdict(b.name, b.deterministic, r);
                if r.is_deterministic() {
                    "deterministic"
                } else {
                    "nondeterministic"
                }
            }
            Err(_) => "-",
        };
        println!(
            "{:<18} {:>12} {:>12}  {verdict}",
            b.name,
            cell(&without),
            cell(&with)
        );
        rows.push(measure_ir_row(b, "pruning", &options_full(), 1, grown));
        rows.push(measure_ir_row(
            b,
            "no-pruning",
            &options_no_pruning(),
            1,
            grown,
        ));
    }
    write_ir_json("fig11b_pruning", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig11b");
    group.sample_size(10);
    for b in SUITE {
        let graph = lower(b.source);
        group.bench_function(format!("{}/pruning", b.name), |bench| {
            bench.iter(|| check_determinism(&graph, &options_full()).unwrap())
        });
        group.bench_function(format!("{}/no-pruning", b.name), |bench| {
            bench.iter(|| check_determinism(&graph, &options_no_pruning()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
