//! Figure 11b: determinacy-analysis time with and without pruning
//! (commutativity checking enabled in both configurations).
//!
//! Paper claim: with commutativity + pruning, every benchmark completes in
//! under two seconds; without pruning, some exceed the budget.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{cell, lower, options_full, options_no_pruning, timed_check};
use rehearsal_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn print_table() {
    println!("\n=== Figure 11b: determinism-check time (pruning ablation) ===");
    println!(
        "{:<18} {:>12} {:>12}  verdict",
        "benchmark", "no pruning", "pruning"
    );
    let budget = Duration::from_secs(600);
    for b in SUITE {
        let graph = lower(b.source);
        let without = timed_check(&graph, &options_no_pruning(), budget);
        let with = timed_check(&graph, &options_full(), budget);
        let verdict = match &with {
            Ok((_, r)) if r.is_deterministic() => "deterministic",
            Ok(_) => "nondeterministic",
            Err(_) => "-",
        };
        println!(
            "{:<18} {:>12} {:>12}  {verdict}",
            b.name,
            cell(&without),
            cell(&with)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig11b");
    group.sample_size(10);
    for b in SUITE {
        let graph = lower(b.source);
        group.bench_function(format!("{}/pruning", b.name), |bench| {
            bench.iter(|| check_determinism(&graph, &options_full()).unwrap())
        });
        group.bench_function(format!("{}/no-pruning", b.name), |bench| {
            bench.iter(|| check_determinism(&graph, &options_no_pruning()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
