//! Figure 13: scalability with `n` interfering resources.
//!
//! Two synthetic workloads from §6:
//!
//! * `n` unordered file resources writing the same path — the
//!   commutativity check is useless, the file cannot be pruned, and the
//!   checker explores all `n!` orders. Time grows super-linearly (the
//!   paper exceeds two minutes at `n = 6`).
//! * `n` conflicting *packages* ordered before one final `file` resource —
//!   deterministic, so the solver must construct an unsatisfiability
//!   proof instead of stopping at the first model.

use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::{BenchmarkId, Criterion};
use rehearsal_bench::{
    cell, conflicting_packages_manifest, conflicting_writers, options_full, timed_check,
};
use rehearsal_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn print_table() {
    println!("\n=== Figure 13: n unordered writers to one path ===");
    println!(
        "{:<4} {:>12} {:>14} {:>16}",
        "n", "sequences", "nondet time", "det (packages)"
    );
    let budget = Duration::from_secs(480);
    for n in 2..=6 {
        let g = conflicting_writers(n);
        let nondet = timed_check(&g, &options_full(), budget);
        let sequences = nondet
            .as_ref()
            .map(|(_, r)| r.stats().sequences_explored.to_string())
            .unwrap_or_else(|_| "-".to_string());

        let (src, tool) = conflicting_packages_manifest(n);
        let graph = tool.lower(&src).expect("lowering");
        let det = timed_check(&graph, &options_full(), budget);

        println!(
            "{:<4} {:>12} {:>14} {:>16}",
            n,
            sequences,
            cell(&nondet),
            cell(&det)
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig13_writers");
    group.sample_size(10);
    for n in 2..=5usize {
        let g = conflicting_writers(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bench, g| {
            bench.iter(|| check_determinism(g, &options_full()).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig13_packages_unsat");
    group.sample_size(10);
    for n in 2..=4usize {
        let (src, tool) = conflicting_packages_manifest(n);
        let graph = tool.lower(&src).expect("lowering");
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |bench, g| {
            bench.iter(|| check_determinism(g, &options_full()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
