//! Figure 11c: determinacy-analysis time with and without the
//! commutativity check (pruning disabled in both, as in the paper).
//!
//! Paper claim: without commutativity, four benchmarks exceed ten minutes
//! and one takes more than two minutes — the permutation space explodes.
//! We use a 30-second budget per run and report `Timeout` the same way.

use rehearsal::benchmarks::SUITE;
use rehearsal::core::determinism::check_determinism;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{
    cell, lower, options_commutativity_only, options_no_commutativity, timed_check,
};
use rehearsal_bench::{criterion_group, criterion_main};
use std::time::Duration;

fn print_table() {
    println!("\n=== Figure 11c: determinism-check time (commutativity ablation) ===");
    println!(
        "{:<18} {:>16} {:>16}",
        "benchmark", "no commutativity", "commutativity"
    );
    let budget = Duration::from_secs(30);
    for b in SUITE {
        let graph = lower(b.source);
        let without = timed_check(&graph, &options_no_commutativity(), budget);
        let with = timed_check(&graph, &options_commutativity_only(), budget);
        println!("{:<18} {:>16} {:>16}", b.name, cell(&without), cell(&with));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("fig11c");
    group.sample_size(10);
    // Criterion-measure only benchmarks that stay feasible without the
    // commutativity check (the rest time out, which the table above shows).
    for name in ["monit", "ntp-nondet", "bind", "dns-nondet", "nginx"] {
        let b = rehearsal::benchmarks::by_name(name).unwrap();
        let graph = lower(b.source);
        group.bench_function(format!("{name}/commutativity"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_commutativity_only()).unwrap())
        });
        group.bench_function(format!("{name}/naive"), |bench| {
            bench.iter(|| check_determinism(&graph, &options_no_commutativity()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
