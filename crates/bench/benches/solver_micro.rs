//! Solver microbenchmarks: raw CDCL throughput on pigeonhole instances,
//! and the grounding-reuse win of the incremental context
//! ([`rehearsal_solver::Ctx::solve_assuming`]) over per-query one-shot
//! solving. Both families assert their SAT/UNSAT verdicts — a drift
//! panics the bench, wall time never does.

use rehearsal_bench::harness::{is_quick, BenchmarkId, Criterion};
use rehearsal_bench::{criterion_group, criterion_main};
use rehearsal_solver::{Ctx, Formula, Lit, Solver};

/// The pigeonhole principle PHP(p, h): p pigeons, h holes.
fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let var: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| Lit::positive(s.new_var())).collect())
        .collect();
    for row in &var {
        s.add_clause(row.iter().copied());
    }
    for h in 0..holes {
        for (p1, row1) in var.iter().enumerate() {
            for row2 in var.iter().skip(p1 + 1) {
                s.add_clause([!row1[h], !row2[h]]);
            }
        }
    }
    s
}

/// A family of related queries over one shared formula structure: `k`
/// finite-domain variables chained by equalities, queried pairwise. Every
/// query after the first grounds almost nothing new.
fn chained_queries(k: usize) -> (Ctx, Vec<(Formula, bool)>) {
    let mut ctx = Ctx::new();
    let vars: Vec<_> = (0..k).map(|_| ctx.fd_var(&[0, 1, 2, 3])).collect();
    let mut queries = Vec::new();
    for i in 0..k - 1 {
        let eq = ctx.eq_terms(vars[i], vars[i + 1]);
        queries.push((eq, true)); // each equality alone: SAT
        let b0 = ctx.bit(vars[i], 0);
        let b1 = ctx.bit(vars[i], 1);
        let both = ctx.and2(b0, b1);
        queries.push((both, false)); // one-hot forbids two values: UNSAT
    }
    (ctx, queries)
}

fn print_reuse_table() {
    println!("\n=== Solver micro: grounding reuse across related queries ===");
    let k = if is_quick() { 16 } else { 64 };
    let (mut ctx, queries) = chained_queries(k);
    let start = std::time::Instant::now();
    for &(q, expect_sat) in &queries {
        let got = ctx.solve_assuming(q, None, None).unwrap().is_some();
        assert_eq!(got, expect_sat, "incremental verdict drift");
    }
    let incremental = start.elapsed();
    let g = ctx.grounding_stats();
    println!(
        "incremental: {} queries in {:?} — {} nodes grounded, {} reused ({:.1}% reuse), {} clauses",
        queries.len(),
        incremental,
        g.grounded_nodes,
        g.reused_nodes,
        g.reuse_ratio() * 100.0,
        g.grounded_clauses,
    );
    assert!(
        g.reuse_ratio() > 0.3,
        "chained queries must reuse grounded structure"
    );

    // The same queries, each on a throwaway solver (the pre-incremental
    // behavior): identical verdicts, no reuse.
    let (mut cold_ctx, cold_queries) = chained_queries(k);
    let start = std::time::Instant::now();
    for &(q, expect_sat) in &cold_queries {
        let got = cold_ctx.solve(q).is_some();
        assert_eq!(got, expect_sat, "one-shot verdict drift");
    }
    println!(
        "one-shot:    {} queries in {:?} (fresh solver per query)",
        cold_queries.len(),
        start.elapsed()
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_reuse_table();

    let mut group = c.benchmark_group("solver_micro_pigeonhole");
    group.sample_size(10);
    for (p, h, sat) in [(5usize, 5usize, true), (6, 5, false), (7, 6, false)] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("php-{p}-{h}")),
            |bench| {
                bench.iter(|| {
                    let mut s = pigeonhole(p, h);
                    let got = s.solve().is_sat();
                    assert_eq!(got, sat, "pigeonhole verdict drift");
                    got
                })
            },
        );
    }
    group.finish();

    let k = if is_quick() { 16 } else { 48 };
    let mut group = c.benchmark_group("solver_micro_grounding_reuse");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::from_parameter(format!("incremental-k{k}")),
        |bench| {
            bench.iter(|| {
                let (mut ctx, queries) = chained_queries(k);
                for &(q, expect_sat) in &queries {
                    let got = ctx.solve_assuming(q, None, None).unwrap().is_some();
                    assert_eq!(got, expect_sat);
                }
                ctx.grounding_stats().reused_nodes
            })
        },
    );
    group.bench_function(
        BenchmarkId::from_parameter(format!("one-shot-k{k}")),
        |bench| {
            bench.iter(|| {
                let (mut ctx, queries) = chained_queries(k);
                for &(q, expect_sat) in &queries {
                    let got = ctx.solve(q).is_some();
                    assert_eq!(got, expect_sat);
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
