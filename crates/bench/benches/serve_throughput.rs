//! Daemon throughput: `/v1/check` requests per second against the warm
//! core, versus the process-per-check cost floor.
//!
//! This is the acceptance benchmark for `rehearsal serve`: the bundled
//! 13-benchmark suite is sent as HTTP requests to an in-process daemon —
//! cold (first sighting, full analysis), warm (resident memo, no
//! re-lowering), and warm from four concurrent clients — and compared to
//! constructing a fresh engine for every check, which is what a
//! process-per-check CLI loop pays even before exec overhead. Every
//! response's verdict is pinned against the paper's (7 det / 6 nondet);
//! any drift panics, so the warm core can only ever change wall time.

use rehearsal::benchmarks::SUITE;
use rehearsal::fleet::{parse_json, FleetEngine, FleetJob, FleetOptions, Json};
use rehearsal::serve::http::http_request;
use rehearsal::serve::{ServeOptions, Server};
use rehearsal::Platform;
use rehearsal_bench::harness::{is_quick, Criterion};
use rehearsal_bench::{criterion_group, criterion_main, write_serve_json, ServeBenchRow};
use std::time::Instant;

fn suite_bodies() -> Vec<(&'static str, bool, String)> {
    SUITE
        .iter()
        .map(|b| {
            let body = Json::obj([
                ("manifest", Json::str(format!("{}.pp", b.name))),
                ("source", Json::str(b.source)),
            ])
            .render();
            (b.name, b.deterministic, body)
        })
        .collect()
}

/// Sends one check and returns whether the daemon's memo answered it,
/// panicking on any verdict drift from the paper's pins.
fn checked_request(addr: &str, name: &str, deterministic: bool, body: &str) -> bool {
    let (status, response) = http_request(addr, "POST", "/v1/check", body).expect("daemon check");
    assert_eq!(status, 200, "{name}: daemon refused the check");
    let doc = parse_json(&response).expect("check response is JSON");
    let expected = if deterministic {
        "deterministic"
    } else {
        "nondeterministic"
    };
    assert_eq!(
        doc.get("verdict").and_then(Json::as_str),
        Some(expected),
        "{name}: verdict drift against the paper's pins"
    );
    doc.get("serve")
        .and_then(|s| s.get("cache_hit"))
        .and_then(Json::as_bool)
        .unwrap_or(false)
}

/// One pass of the suite over HTTP; returns (wall_ms, memo hits).
fn http_pass(addr: &str, bodies: &[(&'static str, bool, String)]) -> (f64, usize) {
    let start = Instant::now();
    let mut hits = 0;
    for (name, det, body) in bodies {
        if checked_request(addr, name, *det, body) {
            hits += 1;
        }
    }
    (start.elapsed().as_secs_f64() * 1e3, hits)
}

/// The process-per-check cost floor: a fresh engine (empty caches, cold
/// arenas) for every single manifest, as a CLI loop would pay.
fn engine_per_check_pass() -> f64 {
    let start = Instant::now();
    for b in SUITE {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        let report = engine.run(vec![FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        }]);
        let row = &report.rows[0];
        let deterministic = row.verdict == rehearsal::fleet::Verdict::Deterministic;
        assert_eq!(
            deterministic, b.deterministic,
            "{}: verdict drift against the paper's pins",
            b.name
        );
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn print_table() {
    println!("\n=== Daemon throughput: /v1/check over the 13-benchmark suite ===");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "wall", "requests", "req/s", "memo hits"
    );
    let mut rows = Vec::new();
    let mut emit = |scenario: &str, wall_ms: f64, requests: usize, memo_hits: usize| {
        let r = ServeBenchRow {
            scenario: scenario.to_string(),
            wall_ms,
            requests,
            req_per_s: requests as f64 / (wall_ms / 1e3),
            memo_hits,
        };
        println!(
            "{:<22} {:>8.1}ms {:>10} {:>12.1} {:>10}",
            r.scenario, r.wall_ms, r.requests, r.req_per_s, r.memo_hits
        );
        rows.push(r);
    };

    let bodies = suite_bodies();
    emit("engine-per-check", engine_per_check_pass(), SUITE.len(), 0);

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        ..ServeOptions::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr").to_string();
    let daemon = std::thread::spawn(move || server.run());

    // Cold: the daemon's first sighting of each manifest — full analysis,
    // but the process, arenas, and caches are already resident.
    let (cold_ms, cold_hits) = http_pass(&addr, &bodies);
    assert_eq!(cold_hits, 0, "a cold pass cannot hit the memo");
    emit("daemon-cold", cold_ms, bodies.len(), cold_hits);

    // Warm: byte-identical repeats answered from the resident memo.
    let (warm_ms, warm_hits) = http_pass(&addr, &bodies);
    assert_eq!(warm_hits, bodies.len(), "a warm pass must be pure memo");
    emit("daemon-warm", warm_ms, bodies.len(), warm_hits);
    assert!(
        warm_ms < cold_ms,
        "the warm core must beat its own cold pass ({warm_ms:.1}ms vs {cold_ms:.1}ms)"
    );

    // Warm under concurrency: four clients splitting the suite.
    let start = Instant::now();
    let workers: Vec<_> = (0..4)
        .map(|lane| {
            let addr = addr.clone();
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                let mut hits = 0;
                for (name, det, body) in bodies.iter().skip(lane).step_by(4) {
                    if checked_request(&addr, name, *det, body) {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let concurrent_hits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    emit(
        "daemon-warm-4-clients",
        start.elapsed().as_secs_f64() * 1e3,
        bodies.len(),
        concurrent_hits,
    );

    let _ = http_request(&addr, "POST", "/v1/shutdown", "").expect("daemon shutdown");
    daemon.join().unwrap().expect("daemon exits cleanly");

    write_serve_json("rehearsal-bench serve_throughput", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(if is_quick() { 2 } else { 10 });

    group.bench_function("engine-per-check/suite", |b| b.iter(engine_per_check_pass));

    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        ..ServeOptions::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr").to_string();
    let daemon = std::thread::spawn(move || server.run());
    let bodies = suite_bodies();
    http_pass(&addr, &bodies); // prime the memo
    group.bench_function("daemon-warm/suite", |b| {
        b.iter(|| http_pass(&addr, &bodies))
    });
    group.finish();
    let _ = http_request(&addr, "POST", "/v1/shutdown", "").expect("daemon shutdown");
    daemon.join().unwrap().expect("daemon exits cleanly");
}

criterion_group!(benches, bench);
criterion_main!(benches);
