//! Differential verification: cold fleet vs. warm cache vs. baseline
//! replay vs. a sliced single-resource edit.
//!
//! This is the acceptance benchmark for the incremental layer: it shows
//! a formatting-only edit answered entirely from the baseline (100%
//! replay), and a single attribute edit re-analyzed only inside its
//! dirty cone with the clean pairs' commutativity verdicts reused. The
//! verdicts of every scenario are compared row-by-row against the cold
//! run — any drift panics, so reuse can only ever change wall time.

use rehearsal::benchmarks::{METADATA_SUITE, SUITE};
use rehearsal::fleet::{BaselineStore, FleetEngine, FleetJob, FleetOptions, FleetReport, Verdict};
use rehearsal::Platform;
use rehearsal_bench::harness::Criterion;
use rehearsal_bench::{
    criterion_group, criterion_main, write_incremental_json, IncrementalBenchRow,
};
use std::time::Instant;

fn suite_jobs() -> Vec<FleetJob> {
    SUITE
        .iter()
        .map(|b| FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        })
        .collect()
}

/// The suite with a semantics-preserving edit applied to every manifest:
/// a leading comment and extra blank lines. Digests are structural, so
/// every manifest must still replay from the baseline.
fn formatted_jobs() -> Vec<FleetJob> {
    suite_jobs()
        .into_iter()
        .map(|mut j| {
            j.source = format!(
                "# reflowed by tooling\n\n{}\n",
                j.source.replace('\n', "\n\n")
            );
            j
        })
        .collect()
}

/// The suite with one real edit: the content of hosting.pp's index.html
/// resource changes, dirtying only that resource's cone.
fn edited_jobs() -> Vec<FleetJob> {
    suite_jobs()
        .into_iter()
        .map(|mut j| {
            if j.name == "hosting.pp" {
                j.source = j.source.replace(
                    "Welcome to example hosting",
                    "Welcome to EXAMPLE hosting v2",
                );
                assert!(j.source.contains("EXAMPLE"), "edit must apply");
            }
            j
        })
        .collect()
}

fn metadata_jobs() -> Vec<FleetJob> {
    METADATA_SUITE
        .iter()
        .map(|b| FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        })
        .collect()
}

/// Sums the per-row reuse accounting across a report.
fn reuse_totals(report: &FleetReport) -> (u64, u64, u64) {
    let mut totals = (0, 0, 0);
    for row in &report.rows {
        if let Some(r) = &row.reuse {
            totals.0 += r.resources_clean as u64;
            totals.1 += r.resources_dirty as u64;
            totals.2 += r.pairs_reused;
        }
    }
    totals
}

/// Panics unless the report's verdicts match the cold run row-by-row.
/// `except` names manifests whose verdict may legitimately differ (none
/// do in practice — edits here are verdict-preserving — but the message
/// names the row either way).
fn assert_verdicts_match(scenario: &str, cold: &FleetReport, report: &FleetReport) {
    assert_eq!(
        cold.rows.len(),
        report.rows.len(),
        "{scenario}: row count drifted"
    );
    for (a, b) in cold.rows.iter().zip(&report.rows) {
        assert_eq!(
            a.verdict, b.verdict,
            "{scenario}: verdict drift on {} (cold {:?}, reused {:?})",
            a.manifest, a.verdict, b.verdict
        );
    }
}

fn row(scenario: &str, wall_ms: f64, report: &FleetReport) -> IncrementalBenchRow {
    let c = report.counts();
    let (clean, dirty, pairs) = reuse_totals(report);
    IncrementalBenchRow {
        scenario: scenario.to_string(),
        wall_ms,
        manifests: report.rows.len(),
        cached: c.cached,
        deterministic: c.deterministic,
        nondeterministic: c.nondeterministic,
        resources_clean: clean,
        resources_dirty: dirty,
        pairs_reused: pairs,
    }
}

fn print_table() {
    println!("\n=== Differential verification: reuse across edits (13-benchmark suite) ===");
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>8} {:>8} {:>14}",
        "scenario", "wall", "cached", "clean", "dirty", "pairs", "verdicts"
    );
    let mut rows = Vec::new();
    let mut emit = |scenario: &str, wall_ms: f64, report: &FleetReport| {
        let r = row(scenario, wall_ms, report);
        println!(
            "{:<16} {:>8.1}ms {:>8} {:>8} {:>8} {:>8} {:>14}",
            r.scenario,
            r.wall_ms,
            r.cached,
            r.resources_clean,
            r.resources_dirty,
            r.pairs_reused,
            format!("{}det/{}nondet", r.deterministic, r.nondeterministic),
        );
        rows.push(r);
    };

    // Cold: full analysis, recording a baseline as it goes.
    let mut cold_engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
        .with_baseline(BaselineStore::in_memory());
    let start = Instant::now();
    let cold = cold_engine.run(suite_jobs());
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let c = cold.counts();
    assert_eq!(
        (c.deterministic, c.nondeterministic),
        (7, 6),
        "cold run must reproduce the paper's verdicts"
    );
    emit("cold", cold_ms, &cold);

    // Warm cache: same engine, same sources — pure verdict-cache hits.
    let start = Instant::now();
    let warm = cold_engine.run(suite_jobs());
    emit("warm-cache", start.elapsed().as_secs_f64() * 1e3, &warm);
    assert_eq!(warm.counts().cached, 13, "warm run must be pure cache hits");
    assert_verdicts_match("warm-cache", &cold, &warm);
    let baseline = cold_engine
        .state()
        .take_baseline()
        .expect("baseline installed");

    // Formatting-only edit on a fresh engine: every manifest lowers to a
    // digest-identical graph and replays from the baseline.
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
    let start = Instant::now();
    let formatted = engine.run(formatted_jobs());
    emit(
        "format-edit",
        start.elapsed().as_secs_f64() * 1e3,
        &formatted,
    );
    assert_eq!(
        formatted.counts().cached,
        13,
        "a formatting-only edit must be a 100% baseline hit"
    );
    assert_verdicts_match("format-edit", &cold, &formatted);
    let baseline = engine.state().take_baseline().expect("baseline installed");

    // Single-attribute edit on a fresh engine: only hosting.pp's dirty
    // cone is re-analyzed; everything else replays, and the clean pairs'
    // commutativity verdicts are reused inside the re-analysis.
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
    let start = Instant::now();
    let edited = engine.run(edited_jobs());
    let edited_ms = start.elapsed().as_secs_f64() * 1e3;
    emit("attr-edit", edited_ms, &edited);
    assert_eq!(
        edited.counts().cached,
        12,
        "all unedited manifests must replay from the baseline"
    );
    let hosting = edited
        .rows
        .iter()
        .find(|r| r.manifest == "hosting.pp")
        .expect("hosting row");
    assert_eq!(hosting.verdict, Verdict::Deterministic);
    let reuse = hosting
        .reuse
        .as_ref()
        .expect("edited row carries reuse accounting");
    assert!(
        reuse.resources_dirty < hosting.resources,
        "the edit must be sliced to its cone ({} dirty of {})",
        reuse.resources_dirty,
        hosting.resources
    );
    assert!(reuse.resources_clean > 0, "clean remainder must be reused");
    let (_, _, fleet_pairs) = reuse_totals(&edited);
    assert!(fleet_pairs > 0, "baseline pair verdicts must be reused");
    assert_verdicts_match("attr-edit", &cold, &edited);
    println!(
        "  (attr-edit wall {:.1}ms vs cold {:.1}ms; hosting cone: {} dirty / {} clean, {} pairs reused)",
        edited_ms, cold_ms, reuse.resources_dirty, reuse.resources_clean, reuse.pairs_reused
    );

    // Metadata suite: the same replay guarantee holds under
    // --model-metadata (its own options fingerprint, its own baseline).
    let mut options = FleetOptions::default().with_jobs(1);
    options.analysis.model_metadata = true;
    let mut engine = FleetEngine::new(options.clone()).with_baseline(BaselineStore::in_memory());
    let start = Instant::now();
    let meta_cold = engine.run(metadata_jobs());
    emit(
        "metadata-cold",
        start.elapsed().as_secs_f64() * 1e3,
        &meta_cold,
    );
    let c = meta_cold.counts();
    assert_eq!(
        (c.deterministic, c.nondeterministic),
        (3, 3),
        "metadata suite verdicts must hold under the baseline recorder"
    );
    let baseline = engine.state().take_baseline().expect("baseline installed");
    let mut engine = FleetEngine::new(options).with_baseline(baseline);
    let start = Instant::now();
    let meta_warm = engine.run(metadata_jobs());
    emit(
        "metadata-replay",
        start.elapsed().as_secs_f64() * 1e3,
        &meta_warm,
    );
    assert_eq!(meta_warm.counts().cached, 6, "metadata replay must be hits");
    assert_verdicts_match("metadata-replay", &meta_cold, &meta_warm);

    write_incremental_json("rehearsal-bench incremental_reuse", &rows);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("incremental_reuse");
    group.sample_size(10);
    group.bench_function("suite/cold", |b| {
        b.iter(|| {
            let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
                .with_baseline(BaselineStore::in_memory());
            engine.run(suite_jobs())
        })
    });
    group.bench_function("suite/baseline-replay", |b| {
        let mut seed = FleetEngine::new(FleetOptions::default().with_jobs(1))
            .with_baseline(BaselineStore::in_memory());
        seed.run(suite_jobs());
        let baseline = seed.state().take_baseline().expect("baseline installed");
        let mut engine =
            FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
        b.iter(|| engine.run(formatted_jobs()))
    });
    group.bench_function("suite/sliced-edit", |b| {
        let mut seed = FleetEngine::new(FleetOptions::default().with_jobs(1))
            .with_baseline(BaselineStore::in_memory());
        seed.run(suite_jobs());
        let baseline = seed.state().take_baseline().expect("baseline installed");
        let mut engine =
            FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
        b.iter(|| engine.run(edited_jobs()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
