//! Semantic rules over the evaluated catalog, the resource graph, and the
//! per-resource footprint summaries.
//!
//! Catalog rules: missing notifier (R2002), duplicate path (R2004),
//! invalid mode (R2008). Graph + footprint rules: race candidate (R2001)
//! and implicit ordering (R2007) — the solver-free pre-screen: a NONDET
//! verdict requires an unordered non-commuting pair, disjoint footprints
//! commute (Lemma 4, property-tested in `rehearsal-core`), so every
//! explorer-provable race shows up as an unordered `may_overlap` pair.

use rehearsal_core::footprint::{footprint, Footprint};
use rehearsal_diag::{codes, Diagnostic};
use rehearsal_pkgdb::{PackageDb, Platform};
use rehearsal_puppet::{Catalog, ResourceGraph};
use rehearsal_resources::{compile, CompileCtx};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Runs the catalog-only rules, appending findings; returns the number of
/// rules run.
pub fn run_catalog(catalog: &Catalog, findings: &mut Vec<Diagnostic>) -> usize {
    missing_notifiers(catalog, findings);
    duplicate_paths(catalog, findings);
    invalid_modes(catalog, findings);
    3
}

/// Runs the graph + footprint rules, appending findings; returns the
/// number of rules run. Resources that fail to compile (unmodeled types,
/// bad attributes) simply have no footprint and are skipped — lint stays
/// advisory.
pub fn run_graph(
    catalog: &Catalog,
    graph: &ResourceGraph,
    platform: Platform,
    findings: &mut Vec<Diagnostic>,
) -> usize {
    let db = PackageDb::builtin(platform);
    // Metadata modeling is always on for lint: permission/ownership
    // effects only *add* to footprints, so the race pre-screen stays
    // sound for both the plain and the metadata-aware pipelines.
    let ctx = CompileCtx::new(&db).with_model_metadata(true);
    let fps: Vec<Option<Arc<Footprint>>> = catalog
        .resources()
        .iter()
        .map(|r| compile(r, &ctx).ok().map(footprint))
        .collect();
    let n = catalog.resources().len();
    let reach: Vec<_> = (0..n).map(|i| graph.descendants(i)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if reach[i].contains(&j) || reach[j].contains(&i) {
                continue;
            }
            let (Some(fi), Some(fj)) = (&fps[i], &fps[j]) else {
                continue;
            };
            if !fi.may_overlap(fj) {
                continue;
            }
            let (a, b) = (&catalog.resources()[i], &catalog.resources()[j]);
            findings.push(
                Diagnostic::warning(
                    codes::LINT_RACE_CANDIDATE,
                    format!(
                        "`{}` and `{}` may touch the same state with no \
                         ordering between them",
                        a.display_name(),
                        b.display_name()
                    ),
                )
                .with_primary(a.span(), "this resource")
                .with_secondary(b.span(), "may race with this one")
                .with_note(
                    "their footprints overlap but no dependency path orders \
                     them; add `->`, `require`, or `before` (or run `check` \
                     to prove whether the orders really diverge)",
                ),
            );
            // The read-after-write flavour: the later declaration consumes
            // what the earlier one produces, relying on declaration order
            // the tool does not honour.
            if !fj.reads.is_disjoint(&fi.writes) {
                findings.push(
                    Diagnostic::note(
                        codes::LINT_IMPLICIT_ORDERING,
                        format!(
                            "`{}` reads paths `{}` writes but only \
                             declaration order relates them",
                            b.display_name(),
                            a.display_name()
                        ),
                    )
                    .with_primary(b.span(), "reads here")
                    .with_secondary(a.span(), "written by this resource")
                    .with_note(
                        "declaration order is not execution order; make the \
                         data flow explicit with `require` or `->`",
                    ),
                );
            }
        }
    }
    2
}

/// R2002: an ordering-only edge from a file into a service (or exec).
fn missing_notifiers(catalog: &Catalog, findings: &mut Vec<Diagnostic>) {
    for (a, b, origin) in catalog.edges_with_origins() {
        let (file, svc) = (&catalog.resources()[a], &catalog.resources()[b]);
        if file.type_name() != "file" || !matches!(svc.type_name(), "service" | "exec") {
            continue;
        }
        if catalog.edge_is_refresh(a, b) {
            continue;
        }
        let primary = if origin.is_dummy() {
            svc.span()
        } else {
            origin
        };
        findings.push(
            Diagnostic::warning(
                codes::LINT_MISSING_NOTIFIER,
                format!(
                    "`{}` depends on `{}` but is not notified when it changes",
                    svc.display_name(),
                    file.display_name()
                ),
            )
            .with_primary(primary, "ordering-only dependency declared here")
            .with_secondary(file.span(), "the file it consumes")
            .with_note(
                "use `subscribe` or `~>` instead of `require`/`->` so the \
                 service restarts when the file content changes",
            ),
        );
    }
}

/// R2004: two file resources managing the same effective path.
fn duplicate_paths(catalog: &Catalog, findings: &mut Vec<Diagnostic>) {
    let mut by_path: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, r) in catalog.resources().iter().enumerate() {
        if r.type_name() == "file" {
            let path = r.attr_str("path").unwrap_or_else(|| r.title().to_string());
            by_path.entry(path).or_default().push(i);
        }
    }
    for (path, group) in by_path {
        let Some((&first, rest)) = group.split_first() else {
            continue;
        };
        for &dup in rest {
            let (a, b) = (&catalog.resources()[first], &catalog.resources()[dup]);
            findings.push(
                Diagnostic::warning(
                    codes::LINT_DUPLICATE_PATH,
                    format!(
                        "`{}` manages `{path}`, already managed by `{}`",
                        b.display_name(),
                        a.display_name()
                    ),
                )
                .with_primary(b.span(), "second declaration of this path")
                .with_secondary(a.span(), "first declared here")
                .with_note("whichever applies last wins; merge the two declarations"),
            );
        }
    }
}

/// R2008: a file `mode` that is not a 3-4 digit octal string.
fn invalid_modes(catalog: &Catalog, findings: &mut Vec<Diagnostic>) {
    for r in catalog.resources() {
        if r.type_name() != "file" {
            continue;
        }
        let Some(mode) = r.attr_str("mode") else {
            continue;
        };
        let octal =
            (3..=4).contains(&mode.len()) && mode.bytes().all(|b| (b'0'..=b'7').contains(&b));
        if !octal {
            findings.push(
                Diagnostic::warning(
                    codes::LINT_INVALID_MODE,
                    format!(
                        "`{}` has mode `{mode}`, which is not a 3-4 digit \
                         octal string",
                        r.display_name()
                    ),
                )
                .with_primary(r.attr_span("mode"), "invalid mode")
                .with_note("use an octal string like `0644`"),
            );
        }
    }
}
