//! Syntactic rules that run on the parsed [`Manifest`] alone — before (and
//! regardless of whether) evaluation succeeds, so they see dead branches
//! the evaluator never reaches.
//!
//! Rules: undeclared reference (R2003), unused variable (R2005), unused
//! class/define parameter (R2006), self-dependency (R2009).

use rehearsal_diag::{codes, Diagnostic, Span};
use rehearsal_puppet::ast::{
    ChainOperand, Expression, Manifest, Param, Query, ResourceDecl, Statement, StatementKind,
};
use rehearsal_puppet::{capitalize, StrPart};
use std::collections::BTreeSet;

/// Metaparameters whose values are dependency references.
const EDGE_METAPARAMS: &[&str] = &["before", "require", "notify", "subscribe"];

/// Runs every AST rule, appending findings; returns the number of rules
/// run.
pub fn run(manifest: &Manifest, findings: &mut Vec<Diagnostic>) -> usize {
    let mut facts = AstFacts::default();
    collect_stmts(&manifest.statements, &mut facts);
    undeclared_references(&facts, findings);
    unused_variables(&facts, findings);
    unused_parameters(&facts, findings);
    self_dependencies(&facts, findings);
    4
}

/// Everything the AST rules need, gathered in one walk over the whole
/// manifest (dead branches included).
#[derive(Default)]
struct AstFacts {
    /// `(lower-case type, literal title)` pairs declared anywhere.
    declared: BTreeSet<(String, String)>,
    /// Types with at least one non-literal title — references to these
    /// cannot be checked statically.
    dynamic_types: BTreeSet<String>,
    /// Class and defined-type names (lower-case).
    classes: BTreeSet<String>,
    defines: BTreeSet<String>,
    /// Variable assignments in source order.
    assigns: Vec<(String, Span)>,
    /// Final-segment names of every variable referenced anywhere.
    uses: BTreeSet<String>,
    /// Literal resource references: `(lower-case type, title, anchor)`.
    refs: Vec<(String, String, Span)>,
    /// Self-dependencies: `(display name, anchor)`.
    self_deps: Vec<(String, Span)>,
    /// Classes/defines with parameters, for the unused-parameter rule.
    param_decls: Vec<ParamDecl>,
}

struct ParamDecl {
    kind: &'static str,
    name: String,
    params: Vec<String>,
    /// Variables the body (and other parameter defaults) reference.
    uses: BTreeSet<String>,
    span: Span,
}

/// `$::x` and `$scope::x` both count as uses of `x`.
fn norm_var(name: &str) -> String {
    name.rsplit("::").next().unwrap_or(name).to_string()
}

fn collect_stmts(stmts: &[Statement], facts: &mut AstFacts) {
    for stmt in stmts {
        let anchor = stmt.span;
        match &stmt.kind {
            StatementKind::Resource(decl) => collect_resource_decl(decl, facts, anchor),
            StatementKind::Define(d) => {
                facts.defines.insert(d.name.to_lowercase());
                let uses = decl_uses(&d.params, &d.body);
                facts.param_decls.push(ParamDecl {
                    kind: "defined type",
                    name: d.name.clone(),
                    params: d.params.iter().map(|p| p.name.clone()).collect(),
                    uses,
                    span: anchor,
                });
                for p in &d.params {
                    if let Some(e) = &p.default {
                        walk_expr(e, anchor, facts);
                    }
                }
                collect_stmts(&d.body, facts);
            }
            StatementKind::Class(c) => {
                facts.classes.insert(c.name.to_lowercase());
                let uses = decl_uses(&c.params, &c.body);
                facts.param_decls.push(ParamDecl {
                    kind: "class",
                    name: c.name.clone(),
                    params: c.params.iter().map(|p| p.name.clone()).collect(),
                    uses,
                    span: anchor,
                });
                for p in &c.params {
                    if let Some(e) = &p.default {
                        walk_expr(e, anchor, facts);
                    }
                }
                collect_stmts(&c.body, facts);
            }
            StatementKind::Include(names) => {
                for n in names {
                    facts
                        .refs
                        .push(("class".to_string(), n.to_lowercase(), anchor));
                }
            }
            StatementKind::Assign(name, e) => {
                facts.assigns.push((name.clone(), anchor));
                walk_expr(e, anchor, facts);
            }
            StatementKind::Chain(ch) => {
                let mut operand_refs: Vec<BTreeSet<(String, String)>> = Vec::new();
                for op in &ch.operands {
                    operand_refs.push(chain_operand_refs(op));
                    match op {
                        ChainOperand::Refs(exprs) => {
                            for e in exprs {
                                walk_expr(e, anchor, facts);
                            }
                        }
                        ChainOperand::Resource(decl) => collect_resource_decl(decl, facts, anchor),
                        ChainOperand::Collector(c) => {
                            walk_query(&c.query, anchor, facts);
                            for a in &c.overrides {
                                walk_expr(&a.value, a.span, facts);
                            }
                        }
                    }
                }
                for (k, pair) in operand_refs.windows(2).enumerate() {
                    for id in pair[0].intersection(&pair[1]) {
                        let arrow = ch.arrow_spans.get(k).copied().unwrap_or(anchor);
                        facts.self_deps.push((display_id(id), arrow));
                    }
                }
            }
            StatementKind::Collector(c) => {
                walk_query(&c.query, anchor, facts);
                for a in &c.overrides {
                    walk_expr(&a.value, a.span, facts);
                }
            }
            StatementKind::ResourceDefault(rd) => {
                for a in &rd.attrs {
                    walk_expr(&a.value, a.span, facts);
                }
            }
            StatementKind::If(arms) => {
                for (cond, body) in arms {
                    walk_expr(cond, anchor, facts);
                    collect_stmts(body, facts);
                }
            }
            StatementKind::Case(scrutinee, arms) => {
                walk_expr(scrutinee, anchor, facts);
                for arm in arms {
                    for v in &arm.values {
                        walk_expr(v, anchor, facts);
                    }
                    collect_stmts(&arm.body, facts);
                }
            }
            StatementKind::Node(_, body) => collect_stmts(body, facts),
            StatementKind::Call(_, args) => {
                for a in args {
                    walk_expr(a, anchor, facts);
                }
            }
        }
    }
}

/// Variables a class/define body and its parameter defaults reference.
fn decl_uses(params: &[Param], body: &[Statement]) -> BTreeSet<String> {
    let mut uses = BTreeSet::new();
    for p in params {
        if let Some(e) = &p.default {
            expr_var_uses(e, &mut uses);
        }
    }
    stmt_var_uses(body, &mut uses);
    uses
}

fn collect_resource_decl(decl: &ResourceDecl, facts: &mut AstFacts, _anchor: Span) {
    for body in &decl.bodies {
        match literal_titles(&body.title) {
            Some(titles) => {
                if decl.type_name == "class" {
                    // `class { 'x': }` *references* class x.
                    for t in titles {
                        facts
                            .refs
                            .push(("class".to_string(), t.to_lowercase(), body.title_span));
                    }
                } else {
                    for t in titles {
                        facts.declared.insert((decl.type_name.clone(), t));
                    }
                }
            }
            None => {
                facts.dynamic_types.insert(decl.type_name.clone());
                walk_expr(&body.title, body.title_span, facts);
            }
        }
        let own: BTreeSet<(String, String)> = literal_titles(&body.title)
            .unwrap_or_default()
            .into_iter()
            .map(|t| (decl.type_name.clone(), t))
            .collect();
        for a in &body.attrs {
            walk_expr(&a.value, a.span, facts);
            if EDGE_METAPARAMS.contains(&a.name.as_str()) {
                for id in expr_literal_refs(&a.value) {
                    if own.contains(&id) {
                        facts.self_deps.push((display_id(&id), a.span));
                    }
                }
            }
        }
    }
}

/// Literal `(type, title)` references an entire chain operand mentions.
fn chain_operand_refs(op: &ChainOperand) -> BTreeSet<(String, String)> {
    match op {
        ChainOperand::Refs(exprs) => exprs.iter().flat_map(expr_literal_refs).collect(),
        ChainOperand::Resource(decl) => decl
            .bodies
            .iter()
            .filter_map(|b| literal_titles(&b.title))
            .flatten()
            .map(|t| (decl.type_name.clone(), t))
            .collect(),
        ChainOperand::Collector(_) => BTreeSet::new(),
    }
}

/// All literal `(lower-case type, title)` references inside an expression.
fn expr_literal_refs(e: &Expression) -> Vec<(String, String)> {
    let mut out = Vec::new();
    fn go(e: &Expression, out: &mut Vec<(String, String)>) {
        match e {
            Expression::ResourceRef(t, args) => {
                let tl = t.to_lowercase();
                for a in args {
                    if let Expression::Str(s) = a {
                        out.push((tl.clone(), s.clone()));
                    }
                }
            }
            Expression::Array(es) => es.iter().for_each(|e| go(e, out)),
            Expression::Hash(kvs) => kvs.iter().for_each(|(k, v)| {
                go(k, out);
                go(v, out);
            }),
            Expression::Selector(s, arms) => {
                go(s, out);
                arms.iter().for_each(|(m, v)| {
                    go(m, out);
                    go(v, out);
                });
            }
            _ => {}
        }
    }
    go(e, &mut out);
    out
}

/// Titles of a declaration body when they are all literal.
fn literal_titles(title: &Expression) -> Option<Vec<String>> {
    match title {
        Expression::Str(s) => Some(vec![s.clone()]),
        Expression::Array(es) => es
            .iter()
            .map(|e| match e {
                Expression::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn display_id(id: &(String, String)) -> String {
    format!("{}[{}]", capitalize(&id.0), id.1)
}

/// Records variable uses and literal references from one expression.
fn walk_expr(e: &Expression, anchor: Span, facts: &mut AstFacts) {
    expr_var_uses(e, &mut facts.uses);
    for (t, title, _) in expr_literal_refs(e)
        .into_iter()
        .map(|(t, s)| (t, s, anchor))
    {
        facts.refs.push((t, title, anchor));
    }
}

fn walk_query(q: &Query, anchor: Span, facts: &mut AstFacts) {
    match q {
        Query::All => {}
        Query::Eq(_, e) | Query::Ne(_, e) => walk_expr(e, anchor, facts),
        Query::And(a, b) | Query::Or(a, b) => {
            walk_query(a, anchor, facts);
            walk_query(b, anchor, facts);
        }
    }
}

/// Collects final-segment variable names an expression references.
fn expr_var_uses(e: &Expression, uses: &mut BTreeSet<String>) {
    match e {
        Expression::Var(v) => {
            uses.insert(norm_var(v));
        }
        Expression::Interp(parts) => {
            for p in parts {
                if let StrPart::Var(v) = p {
                    uses.insert(norm_var(v));
                }
            }
        }
        Expression::Str(_)
        | Expression::Int(_)
        | Expression::Bool(_)
        | Expression::Undef
        | Expression::Default => {}
        Expression::Array(es) => es.iter().for_each(|e| expr_var_uses(e, uses)),
        Expression::Hash(kvs) => kvs.iter().for_each(|(k, v)| {
            expr_var_uses(k, uses);
            expr_var_uses(v, uses);
        }),
        Expression::ResourceRef(_, args) | Expression::Call(_, args) => {
            args.iter().for_each(|e| expr_var_uses(e, uses))
        }
        Expression::Not(a) => expr_var_uses(a, uses),
        Expression::And(a, b)
        | Expression::Or(a, b)
        | Expression::Cmp(_, a, b)
        | Expression::In(a, b)
        | Expression::Arith(_, a, b) => {
            expr_var_uses(a, uses);
            expr_var_uses(b, uses);
        }
        Expression::Selector(s, arms) => {
            expr_var_uses(s, uses);
            arms.iter().for_each(|(m, v)| {
                expr_var_uses(m, uses);
                expr_var_uses(v, uses);
            });
        }
    }
}

/// Variable uses across a statement list (conditions, titles, attributes,
/// nested bodies).
fn stmt_var_uses(stmts: &[Statement], uses: &mut BTreeSet<String>) {
    for stmt in stmts {
        match &stmt.kind {
            StatementKind::Resource(decl) => {
                for b in &decl.bodies {
                    expr_var_uses(&b.title, uses);
                    for a in &b.attrs {
                        expr_var_uses(&a.value, uses);
                    }
                }
            }
            StatementKind::Define(d) => {
                for p in &d.params {
                    if let Some(e) = &p.default {
                        expr_var_uses(e, uses);
                    }
                }
                stmt_var_uses(&d.body, uses);
            }
            StatementKind::Class(c) => {
                for p in &c.params {
                    if let Some(e) = &p.default {
                        expr_var_uses(e, uses);
                    }
                }
                stmt_var_uses(&c.body, uses);
            }
            StatementKind::Include(_) => {}
            StatementKind::Assign(_, e) => expr_var_uses(e, uses),
            StatementKind::Chain(ch) => {
                for op in &ch.operands {
                    match op {
                        ChainOperand::Refs(exprs) => {
                            exprs.iter().for_each(|e| expr_var_uses(e, uses))
                        }
                        ChainOperand::Resource(decl) => {
                            for b in &decl.bodies {
                                expr_var_uses(&b.title, uses);
                                for a in &b.attrs {
                                    expr_var_uses(&a.value, uses);
                                }
                            }
                        }
                        ChainOperand::Collector(c) => {
                            query_var_uses(&c.query, uses);
                            c.overrides
                                .iter()
                                .for_each(|a| expr_var_uses(&a.value, uses));
                        }
                    }
                }
            }
            StatementKind::Collector(c) => {
                query_var_uses(&c.query, uses);
                c.overrides
                    .iter()
                    .for_each(|a| expr_var_uses(&a.value, uses));
            }
            StatementKind::ResourceDefault(rd) => {
                rd.attrs.iter().for_each(|a| expr_var_uses(&a.value, uses))
            }
            StatementKind::If(arms) => {
                for (cond, body) in arms {
                    expr_var_uses(cond, uses);
                    stmt_var_uses(body, uses);
                }
            }
            StatementKind::Case(scrutinee, arms) => {
                expr_var_uses(scrutinee, uses);
                for arm in arms {
                    arm.values.iter().for_each(|v| expr_var_uses(v, uses));
                    stmt_var_uses(&arm.body, uses);
                }
            }
            StatementKind::Node(_, body) => stmt_var_uses(body, uses),
            StatementKind::Call(_, args) => args.iter().for_each(|e| expr_var_uses(e, uses)),
        }
    }
}

fn query_var_uses(q: &Query, uses: &mut BTreeSet<String>) {
    match q {
        Query::All => {}
        Query::Eq(_, e) | Query::Ne(_, e) => expr_var_uses(e, uses),
        Query::And(a, b) | Query::Or(a, b) => {
            query_var_uses(a, uses);
            query_var_uses(b, uses);
        }
    }
}

// ---- the rules ----

/// R2003: a literal reference with no matching declaration anywhere.
fn undeclared_references(facts: &AstFacts, findings: &mut Vec<Diagnostic>) {
    let mut reported = BTreeSet::new();
    for (t, title, anchor) in &facts.refs {
        // Stages are synthesized by the evaluator (R0106 covers typos).
        if t == "stage" {
            continue;
        }
        let missing = if t == "class" {
            let name = title.trim_start_matches("::");
            !facts.classes.contains(name)
        } else {
            !facts.dynamic_types.contains(t)
                && !facts.declared.contains(&(t.clone(), title.clone()))
        };
        if missing && reported.insert((t.clone(), title.clone())) {
            let display = if t == "class" {
                format!("class `{title}`")
            } else {
                format!("`{}`", display_id(&(t.clone(), title.clone())))
            };
            findings.push(
                Diagnostic::warning(
                    codes::LINT_UNDECLARED_REFERENCE,
                    format!("{display} is referenced but never declared"),
                )
                .with_primary(*anchor, "referenced here")
                .with_note(
                    "the reference matches no declaration anywhere in the \
                     manifest, including branches evaluation does not reach",
                ),
            );
        }
    }
}

/// R2005: an assigned variable nothing reads.
fn unused_variables(facts: &AstFacts, findings: &mut Vec<Diagnostic>) {
    for (name, span) in &facts.assigns {
        if !facts.uses.contains(&norm_var(name)) {
            findings.push(
                Diagnostic::warning(
                    codes::LINT_UNUSED_VARIABLE,
                    format!("variable `${name}` is assigned but never used"),
                )
                .with_primary(*span, "assigned here"),
            );
        }
    }
}

/// R2006: a class/define parameter its body ignores.
fn unused_parameters(facts: &AstFacts, findings: &mut Vec<Diagnostic>) {
    for decl in &facts.param_decls {
        for p in &decl.params {
            if !decl.uses.contains(p) {
                findings.push(
                    Diagnostic::warning(
                        codes::LINT_UNUSED_PARAMETER,
                        format!(
                            "parameter `${p}` of {} `{}` is never used",
                            decl.kind, decl.name
                        ),
                    )
                    .with_primary(decl.span, format!("`${p}` declared here")),
                );
            }
        }
    }
}

/// R2009: a resource depending on itself.
fn self_dependencies(facts: &AstFacts, findings: &mut Vec<Diagnostic>) {
    let mut reported = BTreeSet::new();
    for (display, span) in &facts.self_deps {
        if reported.insert((display.clone(), (span.lo.line, span.lo.col))) {
            findings.push(
                Diagnostic::warning(
                    codes::LINT_SELF_DEPENDENCY,
                    format!("`{display}` declares a dependency on itself"),
                )
                .with_primary(*span, "self-dependency declared here")
                .with_note("the evaluator silently drops self-edges, so this has no effect"),
            );
        }
    }
}
