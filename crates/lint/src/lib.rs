//! **rehearsal-lint** — a solver-free static analysis pass for Puppet
//! manifests.
//!
//! Rehearsal proves determinism by symbolic exploration, but most
//! real-world manifest defects — missing `require`/`notify` edges,
//! resources that statically overlap with no ordering between them — are
//! detectable without ever invoking the solver (cf. Sotiropoulos et al.,
//! "Detecting Missing Dependencies and Notifiers in Puppet Programs").
//! This crate runs a registry of rules (see [`RULES`]) over the parsed
//! AST, the evaluated catalog, the resource graph, and the per-resource
//! [`Footprint`](rehearsal_core::footprint::Footprint) summaries, emitting
//! [`Diagnostic`]s with stable `R2xxx` codes and source-anchored spans —
//! milliseconds per manifest, so fleets can screen millions of manifests
//! before the expensive explorer runs.
//!
//! The headline rule (R2001, `race-candidate`) is a *sound* pre-screen
//! for the explorer: a NONDET verdict requires an unordered
//! non-commuting pair, and disjoint footprints commute (Lemma 4,
//! property-tested in `rehearsal-core`), so every manifest the explorer
//! proves non-deterministic contains an unordered `may_overlap` pair this
//! rule flags.
//!
//! # Examples
//!
//! ```
//! use rehearsal_lint::{lint_source, LintOptions};
//!
//! let source = "$unused = 1\nfile { '/x': require => File['/typo'] }\n";
//! let report = lint_source("site.pp", source, &LintOptions::default());
//! let codes: Vec<&str> = report.findings.iter().map(|d| d.code.as_str()).collect();
//! assert!(codes.contains(&"R2005"), "unused variable");
//! assert!(codes.contains(&"R2003"), "undeclared reference");
//! assert!(report.render().contains("site.pp"));
//! ```

#![warn(missing_docs)]

mod ast_pass;
mod config;
mod report;
mod rules;

pub use config::{LintLevel, LintOptions};
pub use report::LintReport;
pub use rules::{find_rule, RuleInfo, RULES};

mod semantic_pass;

use rehearsal_diag::{Diagnostic, Severity, SourceMap};
use rehearsal_pkgdb::Platform;
use rehearsal_puppet::{evaluate, parse, Facts, ResourceGraph};

/// Lints one manifest: parses, evaluates, builds the graph, compiles
/// footprints, and runs every rule each successfully-built stage
/// supports. Pipeline failures (parse/eval/cycle errors) become
/// error-severity findings and the rules that needed the failed stage are
/// skipped; the pass never invokes the SAT solver.
///
/// Emits `lint.rules_run` and `lint.findings` trace counters and a
/// `lint` span, so the pass shows up in `--timings`.
pub fn lint_source(name: &str, source: &str, options: &LintOptions) -> LintReport {
    let _span = rehearsal_trace::span_cat("lint", "lint");
    let source_map = SourceMap::single(name, source);
    let mut findings = Vec::new();
    let mut rules_run = 0;
    match parse(source) {
        Err(e) => findings.push(e.to_diagnostic()),
        Ok(manifest) => {
            rules_run += ast_pass::run(&manifest, &mut findings);
            let facts = match options.platform {
                Platform::Ubuntu => Facts::ubuntu(),
                Platform::Centos => Facts::centos(),
            };
            match evaluate(&manifest, &facts) {
                Err(e) => findings.push(e.to_diagnostic()),
                Ok(catalog) => {
                    rules_run += semantic_pass::run_catalog(&catalog, &mut findings);
                    match ResourceGraph::from_catalog(&catalog) {
                        Err(e) => findings.push(e.to_diagnostic()),
                        Ok(graph) => {
                            rules_run += semantic_pass::run_graph(
                                &catalog,
                                &graph,
                                options.platform,
                                &mut findings,
                            );
                        }
                    }
                }
            }
        }
    }
    let findings = configure(findings, options);
    rehearsal_trace::counter_add("lint.rules_run", rules_run as u64);
    rehearsal_trace::counter_add("lint.findings", findings.len() as u64);
    LintReport {
        findings,
        rules_run,
        source_map,
    }
}

/// Applies per-rule overrides and `--deny warnings`, then orders findings
/// by source position (dummy spans last), severity, and code.
fn configure(findings: Vec<Diagnostic>, options: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::with_capacity(findings.len());
    for mut d in findings {
        match options.level_for(&d.code) {
            Some(LintLevel::Allow) => continue,
            Some(LintLevel::Warn) => d.severity = Severity::Warning,
            Some(LintLevel::Deny) => d.severity = Severity::Error,
            None => {}
        }
        if options.deny_warnings && d.severity == Severity::Warning {
            d.severity = Severity::Error;
        }
        out.push(d);
    }
    out.sort_by_key(|d| {
        let pos = d
            .primary
            .as_ref()
            .map(|l| (l.span.lo.line, l.span.lo.col))
            .filter(|&(line, _)| line != 0)
            .unwrap_or((u32::MAX, u32::MAX));
        (
            pos,
            std::cmp::Reverse(d.severity),
            d.code.clone(),
            d.message.clone(),
        )
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(report: &LintReport) -> Vec<String> {
        report.findings.iter().map(|d| d.code.clone()).collect()
    }

    #[test]
    fn clean_manifest_has_no_findings_and_runs_all_rules() {
        let src = "file { '/a': content => 'x' }\n";
        let report = lint_source("clean.pp", src, &LintOptions::default());
        assert_eq!(report.findings, vec![], "{}", report.render());
        assert_eq!(report.rules_run, RULES.len());
    }

    #[test]
    fn race_candidate_flags_unordered_overlap() {
        let src = "file { '/x': content => 'a' }\n\
                   file { 'dup': path => '/x', content => 'b' }\n";
        let report = lint_source("race.pp", src, &LintOptions::default());
        assert!(codes_of(&report).contains(&"R2001".to_string()));
        assert!(codes_of(&report).contains(&"R2004".to_string()));
    }

    #[test]
    fn ordered_overlap_is_not_a_race() {
        let src = "file { '/x': content => 'a' }\n\
                   -> file { 'dup': path => '/x', content => 'b' }\n";
        let report = lint_source("ordered.pp", src, &LintOptions::default());
        assert!(!codes_of(&report).contains(&"R2001".to_string()));
    }

    #[test]
    fn missing_notifier_fires_on_require_not_on_subscribe() {
        let req = "file { '/etc/app.conf': content => 'x' }\n\
                   service { 'app': ensure => running, require => File['/etc/app.conf'] }\n";
        let report = lint_source("req.pp", req, &LintOptions::default());
        assert!(codes_of(&report).contains(&"R2002".to_string()));
        let sub = req.replace("require =>", "subscribe =>");
        let report = lint_source("sub.pp", &sub, &LintOptions::default());
        assert!(!codes_of(&report).contains(&"R2002".to_string()));
    }

    #[test]
    fn undeclared_reference_sees_dead_branches() {
        let src = "if false {\n  file { '/dead': require => File['/nowhere'] }\n}\n";
        let report = lint_source("dead.pp", src, &LintOptions::default());
        assert!(codes_of(&report).contains(&"R2003".to_string()));
        // The declaration in the dead branch still counts as declared.
        let ok = "if false {\n  file { '/nowhere': }\n}\nfile { '/live': require => File['/nowhere'] }\n";
        let report = lint_source("deadok.pp", ok, &LintOptions::default());
        assert!(
            !codes_of(&report).contains(&"R2003".to_string()),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unused_variable_and_parameter() {
        let src = "$unused = 1\n$used = '/p'\nfile { $used: }\n\
                   define app($port, $doc) { file { \"/a-${doc}\": } }\n";
        let report = lint_source("unused.pp", src, &LintOptions::default());
        let codes = codes_of(&report);
        assert!(codes.contains(&"R2005".to_string()));
        assert!(codes.contains(&"R2006".to_string()));
        let messages: Vec<&str> = report.findings.iter().map(|d| d.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("$unused")));
        assert!(messages.iter().any(|m| m.contains("$port")));
        assert!(!messages.iter().any(|m| m.contains("`$doc`")));
    }

    #[test]
    fn self_dependency_via_metaparam_and_chain() {
        let src = "file { '/x': require => File['/x'] }\n";
        let report = lint_source("selfdep.pp", src, &LintOptions::default());
        assert!(codes_of(&report).contains(&"R2009".to_string()));
        let chain = "file { '/y': }\nFile['/y'] -> File['/y']\n";
        let report = lint_source("selfchain.pp", chain, &LintOptions::default());
        assert!(codes_of(&report).contains(&"R2009".to_string()));
    }

    #[test]
    fn invalid_mode_fires_only_on_bad_strings() {
        let src = "file { '/x': mode => '999' }\nfile { '/y': mode => '0644' }\n";
        let report = lint_source("mode.pp", src, &LintOptions::default());
        let modes: Vec<_> = report
            .findings
            .iter()
            .filter(|d| d.code == "R2008")
            .collect();
        assert_eq!(modes.len(), 1);
        assert!(modes[0].message.contains("999"));
    }

    #[test]
    fn implicit_ordering_is_a_note_on_read_after_write() {
        // The service's init-script check reads a file the package writes.
        let src = "package { 'nginx': ensure => present }\n\
                   service { 'nginx': ensure => running }\n";
        let report = lint_source("implicit.pp", src, &LintOptions::default());
        let implicit: Vec<_> = report
            .findings
            .iter()
            .filter(|d| d.code == "R2007")
            .collect();
        assert!(!implicit.is_empty());
        assert!(implicit.iter().all(|d| d.severity == Severity::Note));
    }

    #[test]
    fn parse_and_eval_errors_become_findings() {
        let report = lint_source("bad.pp", "file { ", &LintOptions::default());
        assert!(report.has_errors());
        assert_eq!(report.rules_run, 0);
        let report = lint_source("evalbad.pp", "file { $nope: }", &LintOptions::default());
        assert!(report.has_errors());
        assert_eq!(report.rules_run, 4, "AST rules still ran");
    }

    #[test]
    fn severity_configuration_allows_warns_and_denies() {
        let src = "$unused = 1\n";
        let allow = LintOptions::default().allow("unused-variable");
        assert_eq!(lint_source("a.pp", src, &allow).findings.len(), 0);
        let deny = LintOptions::default().deny("R2005");
        let report = lint_source("d.pp", src, &deny);
        assert!(report.has_errors());
        let dw = LintOptions {
            deny_warnings: true,
            ..LintOptions::default()
        };
        assert!(lint_source("w.pp", src, &dw).has_errors());
    }

    #[test]
    fn findings_are_ordered_by_position() {
        let src = "$z = 1\n$a = 2\nfile { '/x': mode => '99' }\n";
        let report = lint_source("order.pp", src, &LintOptions::default());
        let lines: Vec<u32> = report
            .findings
            .iter()
            .filter_map(|d| d.primary.as_ref())
            .map(|l| l.span.lo.line)
            .collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
