//! The result of a lint run.

use rehearsal_diag::{Diagnostic, Severity, SourceMap};

/// Everything one lint run produced: findings (already filtered and
/// re-levelled per the [`LintOptions`](crate::LintOptions)), the number of
/// rules that ran, and the source map to render snippets with.
#[derive(Debug)]
pub struct LintReport {
    /// The findings, ordered by source position.
    pub findings: Vec<Diagnostic>,
    /// How many lint rules actually ran (pipeline-stage failures skip the
    /// rules that needed that stage).
    pub rules_run: usize,
    /// Source map for rendering the findings.
    pub source_map: SourceMap,
}

impl LintReport {
    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.findings {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// Whether any finding is error-severity (the run should fail).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|d| d.severity == Severity::Error)
    }

    /// Renders every finding as a rustc-style snippet, separated by blank
    /// lines.
    pub fn render(&self) -> String {
        self.findings
            .iter()
            .map(|d| self.source_map.render(d))
            .collect::<Vec<_>>()
            .join("\n")
    }
}
