//! The rule registry: every lint rule's stable code, kebab-case name,
//! default severity, and a one-line example of what it catches.
//!
//! The registry is the single source of truth for the CLI's
//! `--allow/--warn/--deny RULE` flags (which accept either the code or the
//! name) and for the README's rule table.

use rehearsal_diag::{codes, Severity};

/// One registered lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// The stable diagnostic code (`R2xxx`, registered in
    /// [`rehearsal_diag::codes`]).
    pub code: &'static str,
    /// Kebab-case rule name accepted by severity flags (e.g.
    /// `race-candidate`).
    pub name: &'static str,
    /// One-line summary of what the rule detects.
    pub summary: &'static str,
    /// Severity the rule emits at unless overridden.
    pub default_severity: Severity,
    /// A terse example of a manifest fragment that triggers the rule.
    pub example: &'static str,
}

/// Every lint rule, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: codes::LINT_RACE_CANDIDATE,
        name: "race-candidate",
        summary: "two resources whose footprints may overlap have no \
                  ordering between them (sound pre-screen for the explorer)",
        default_severity: Severity::Warning,
        example: "package { 'ntp': } file { '/etc/ntp.conf': content => 'x' }",
    },
    RuleInfo {
        code: codes::LINT_MISSING_NOTIFIER,
        name: "missing-notifier",
        summary: "a service depends on a file it consumes but is not \
                  notified when the file changes",
        default_severity: Severity::Warning,
        example: "service { 'ntp': require => File['/etc/ntp.conf'] }",
    },
    RuleInfo {
        code: codes::LINT_UNDECLARED_REFERENCE,
        name: "undeclared-reference",
        summary: "a resource reference with no matching declaration \
                  anywhere in the manifest, dead branches included",
        default_severity: Severity::Warning,
        example: "file { '/a': require => File['/typo'] }",
    },
    RuleInfo {
        code: codes::LINT_DUPLICATE_PATH,
        name: "duplicate-path",
        summary: "two file resources manage the same effective path",
        default_severity: Severity::Warning,
        example: "file { 'a': path => '/x' } file { 'b': path => '/x' }",
    },
    RuleInfo {
        code: codes::LINT_UNUSED_VARIABLE,
        name: "unused-variable",
        summary: "a variable is assigned but never referenced",
        default_severity: Severity::Warning,
        example: "$port = 123",
    },
    RuleInfo {
        code: codes::LINT_UNUSED_PARAMETER,
        name: "unused-parameter",
        summary: "a class or defined-type parameter is never used in its \
                  body",
        default_severity: Severity::Warning,
        example: "define app($unused) { file { '/a': } }",
    },
    RuleInfo {
        code: codes::LINT_IMPLICIT_ORDERING,
        name: "implicit-ordering",
        summary: "a resource reads paths an earlier-declared resource \
                  writes, with no explicit dependency between them",
        default_severity: Severity::Note,
        example: "file { '/d': } file { '/d/f': }",
    },
    RuleInfo {
        code: codes::LINT_INVALID_MODE,
        name: "invalid-mode",
        summary: "a file `mode` is not a 3-4 digit octal string",
        default_severity: Severity::Warning,
        example: "file { '/x': mode => '999' }",
    },
    RuleInfo {
        code: codes::LINT_SELF_DEPENDENCY,
        name: "self-dependency",
        summary: "a resource declares a dependency on itself (the \
                  evaluator silently drops self-edges)",
        default_severity: Severity::Warning,
        example: "file { '/x': require => File['/x'] }",
    },
];

/// Looks up a rule by stable code (`R2001`) or kebab-case name
/// (`race-candidate`); codes are matched case-insensitively.
pub fn find_rule(key: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.code.eq_ignore_ascii_case(key) || r.name == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_diag::codes::is_registered;

    #[test]
    fn every_rule_has_a_registered_unique_code_and_name() {
        let mut codes_seen = std::collections::BTreeSet::new();
        let mut names_seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(is_registered(r.code), "{} not in diag registry", r.code);
            assert!(r.code.starts_with("R2"), "{} is not an R2xxx code", r.code);
            assert!(codes_seen.insert(r.code), "duplicate code {}", r.code);
            assert!(names_seen.insert(r.name), "duplicate name {}", r.name);
            assert!(!r.summary.is_empty() && !r.example.is_empty());
        }
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(find_rule("R2001").unwrap().name, "race-candidate");
        assert_eq!(find_rule("r2001").unwrap().name, "race-candidate");
        assert_eq!(find_rule("race-candidate").unwrap().code, "R2001");
        assert!(find_rule("no-such-rule").is_none());
    }
}
