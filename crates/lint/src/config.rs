//! Per-rule severity configuration, mirroring the CLI's
//! `--allow/--warn/--deny RULE` flags.

use crate::rules::find_rule;
use rehearsal_pkgdb::Platform;

/// What to do with a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the rule's findings entirely.
    Allow,
    /// Force the rule's findings to warning severity.
    Warn,
    /// Force the rule's findings to error severity (fails the run).
    Deny,
}

/// Options for a lint run: target platform and per-rule severity
/// overrides. The later of two overrides for the same rule wins, matching
/// command-line flag order.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Platform whose package database and facts ground the footprint
    /// rules.
    pub platform: Platform,
    /// Per-rule overrides as `(rule key, level)`; keys are codes or
    /// kebab-case names, resolved via [`find_rule`].
    pub overrides: Vec<(String, LintLevel)>,
    /// Promote every surviving warning to an error (the CLI's
    /// `--deny warnings`). Notes are unaffected.
    pub deny_warnings: bool,
}

impl Default for LintOptions {
    fn default() -> LintOptions {
        LintOptions {
            platform: Platform::Ubuntu,
            overrides: Vec::new(),
            deny_warnings: false,
        }
    }
}

impl LintOptions {
    /// Adds an [`LintLevel::Allow`] override for a rule.
    #[must_use]
    pub fn allow(mut self, rule: impl Into<String>) -> LintOptions {
        self.overrides.push((rule.into(), LintLevel::Allow));
        self
    }

    /// Adds an [`LintLevel::Warn`] override for a rule.
    #[must_use]
    pub fn warn(mut self, rule: impl Into<String>) -> LintOptions {
        self.overrides.push((rule.into(), LintLevel::Warn));
        self
    }

    /// Adds an [`LintLevel::Deny`] override for a rule.
    #[must_use]
    pub fn deny(mut self, rule: impl Into<String>) -> LintOptions {
        self.overrides.push((rule.into(), LintLevel::Deny));
        self
    }

    /// The effective override for a rule code, if any (last one wins).
    pub fn level_for(&self, code: &str) -> Option<LintLevel> {
        self.overrides
            .iter()
            .rev()
            .find(|(key, _)| find_rule(key).is_some_and(|r| r.code == code))
            .map(|&(_, level)| level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_resolve_names_and_codes_last_wins() {
        let o = LintOptions::default()
            .allow("race-candidate")
            .deny("R2001")
            .warn("R2005");
        assert_eq!(o.level_for("R2001"), Some(LintLevel::Deny));
        assert_eq!(o.level_for("R2005"), Some(LintLevel::Warn));
        assert_eq!(o.level_for("R2002"), None);
    }
}
