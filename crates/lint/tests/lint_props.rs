//! Seeded property tests for the lint pass: 256 random mutations of a
//! template pool must never panic the linter, every emitted span must lie
//! within the (mutated) source, and every finding's code must be
//! registered in the diagnostics registry.

use rehearsal_diag::{codes, Diagnostic};
use rehearsal_lint::{lint_source, LintOptions, RULES};

/// Deterministic splitmix64 generator (the workspace's offline stand-in
/// for a property-testing crate).
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// Template manifests covering every rule's trigger shape — the mutation
/// pool starts from sources the rules actually react to.
const POOL: &[&str] = &[
    "file { '/x': content => 'a' }\nfile { 'dup': path => '/x', content => 'b' }\n",
    "file { '/etc/app.conf': content => 'x' }\n\
     service { 'app': ensure => running, require => File['/etc/app.conf'] }\n",
    "$unused = 1\n$used = '/p'\nfile { $used: }\n\
     define app($port, $doc) { file { \"/a-${doc}\": } }\n",
    "if false {\n  file { '/dead': require => File['/nowhere'] }\n}\n",
    "file { '/x': require => File['/x'] }\nfile { '/y': mode => '999' }\n",
    "package { 'nginx': ensure => present }\nservice { 'nginx': ensure => running }\n",
    "class web { file { '/var/www': ensure => directory } }\ninclude web\n\
     File['/var/www'] -> File['/var/www']\n",
    "user { 'carol': ensure => present, managehome => true }\n\
     file { '/home/carol/.vimrc': content => 'syntax on' }\n",
];

/// Every label's span must lie within the source text (1-based lines;
/// columns within the line plus one past the end).
fn assert_spans_within(d: &Diagnostic, name: &str, source: &str) {
    let lines: Vec<&str> = source.lines().collect();
    for label in d.labels() {
        let s = label.span;
        if s.is_dummy() {
            continue;
        }
        assert!(s.lo.line >= 1 && s.hi.line >= s.lo.line, "{name}: {d}");
        // End-of-input errors may point one line past the last newline.
        assert!(
            (s.lo.line as usize) <= lines.len().max(1) + 1,
            "{name}: span line {} beyond {} lines ({d})",
            s.lo.line,
            lines.len()
        );
        assert!(
            (s.hi.line as usize) <= lines.len().max(1) + 1,
            "{name}: span end {} beyond source ({d})",
            s.hi.line,
        );
        if let Some(line) = lines.get(s.lo.line as usize - 1) {
            assert!(
                (s.lo.col as usize) <= line.chars().count() + 1,
                "{name}: col {} beyond line {:?} ({d})",
                s.lo.col,
                line
            );
        }
        if s.hi.line == s.lo.line {
            assert!(s.hi.col >= s.lo.col, "{name}: inverted span ({d})");
        }
    }
    assert!(
        codes::is_registered(&d.code),
        "{name}: code {} not in the registry ({d})",
        d.code
    );
}

/// 256 seeded mutations (truncations, byte flips, line duplications) of
/// the template pool: whatever the linter reports, it never panics, every
/// span stays inside the mutated source, and every code is registered.
#[test]
fn mutated_sources_never_panic_or_emit_out_of_range_spans() {
    let mut rng = Prng::new(0x51_4e7);
    let options = LintOptions::default();
    for case in 0..256 {
        let base = POOL[rng.usize(POOL.len())];
        let mut src: String = match rng.usize(4) {
            0 => {
                // Truncate at a char boundary.
                let cut = rng.usize(base.len() + 1);
                let mut cut = cut.min(base.len());
                while !base.is_char_boundary(cut) {
                    cut -= 1;
                }
                base[..cut].to_string()
            }
            1 => {
                // Flip one byte to punctuation.
                let mut bytes = base.as_bytes().to_vec();
                if !bytes.is_empty() {
                    let i = rng.usize(bytes.len());
                    bytes[i] = b"{}[]'\"$,:>"[rng.usize(10)];
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
            2 => {
                // Duplicate a random line (often a duplicate resource).
                let lines: Vec<&str> = base.lines().collect();
                let i = rng.usize(lines.len());
                let mut out: Vec<&str> = lines.clone();
                out.insert(i, lines[i]);
                out.join("\n")
            }
            _ => {
                // Splice two templates (cross-manifest interactions).
                let other = POOL[rng.usize(POOL.len())];
                format!("{base}{other}")
            }
        };
        src.push('\n');
        let report = lint_source("mutated.pp", &src, &options);
        for d in &report.findings {
            assert_spans_within(d, &format!("case {case}"), &src);
        }
    }
}

/// The rule registry itself is well-formed from the outside: codes are
/// unique, registered in the diagnostics registry, and named in
/// kebab-case.
#[test]
fn rule_codes_are_unique_and_registered() {
    let mut seen = std::collections::BTreeSet::new();
    for rule in RULES {
        assert!(seen.insert(rule.code), "duplicate code {}", rule.code);
        assert!(
            codes::is_registered(rule.code),
            "{} not in the diagnostics registry",
            rule.code
        );
        assert!(
            rule.name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'),
            "{} is not kebab-case",
            rule.name
        );
    }
    assert_eq!(seen.len(), RULES.len());
}
