//! The one diagnostic type every pipeline stage reports through.

use crate::span::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A note or modeling remark; never fails a run.
    Note,
    /// A warning; the pipeline continues.
    Warning,
    /// An error; the pipeline stops or the verdict fails.
    Error,
}

impl Severity {
    /// Stable lower-case label used in JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a [`Severity::label`] back.
    pub fn from_label(label: &str) -> Option<Severity> {
        Some(match label {
            "note" => Severity::Note,
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A span with an explanatory message, anchored into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// Where in the source.
    pub span: Span,
    /// What to say about that location (may be empty).
    pub message: String,
}

impl Label {
    /// Creates a label.
    pub fn new(span: Span, message: impl Into<String>) -> Label {
        Label {
            span,
            message: message.into(),
        }
    }
}

/// One finding: severity, stable code, message, source anchors, notes, and
/// an optional structured payload for machine consumers.
///
/// # Examples
///
/// ```
/// use rehearsal_diag::{codes, Diagnostic, Pos, SourceMap, Span};
///
/// let source = "package { 'vim': ensure => present }\n";
/// let map = SourceMap::single("site.pp", source);
/// let d = Diagnostic::error(codes::NONDETERMINISTIC, "two resources race")
///     .with_primary(
///         Span::new(Pos::new(1, 1), Pos::new(1, 8)),
///         "this resource races",
///     )
///     .with_note("add a dependency arrow to fix the order");
/// let rendered = map.render(&d);
/// assert!(rendered.contains("error[R3001]"));
/// assert!(rendered.contains("site.pp:1:1"));
/// assert!(rendered.contains("^^^^^^^"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The severity.
    pub severity: Severity,
    /// The stable code, from [`crate::codes`] (e.g. `R3001`).
    pub code: String,
    /// The headline message.
    pub message: String,
    /// The main source anchor, if the finding has one.
    pub primary: Option<Label>,
    /// Additional anchors (e.g. the *other* racing resource).
    pub secondary: Vec<Label>,
    /// Free-form notes rendered after the snippets.
    pub notes: Vec<String>,
    /// Structured key → value payload for machine consumers (stable keys,
    /// serialized into the JSON error format verbatim).
    pub payload: Vec<(String, String)>,
}

impl Diagnostic {
    /// Creates a diagnostic with the given severity.
    pub fn new(severity: Severity, code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            code: code.into(),
            message: message.into(),
            primary: None,
            secondary: Vec::new(),
            notes: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// An error diagnostic.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// A warning diagnostic.
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, message)
    }

    /// A note diagnostic.
    pub fn note(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Note, code, message)
    }

    /// Sets the primary label.
    #[must_use]
    pub fn with_primary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.primary = Some(Label::new(span, message));
        self
    }

    /// Adds a secondary label.
    #[must_use]
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.secondary.push(Label::new(span, message));
        self
    }

    /// Adds a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Adds a payload entry.
    #[must_use]
    pub fn with_payload(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.payload.push((key.into(), value.into()));
        self
    }

    /// The primary span (dummy when the diagnostic has no anchor).
    pub fn span(&self) -> Span {
        self.primary.as_ref().map(|l| l.span).unwrap_or(Span::DUMMY)
    }

    /// Whether at least one label carries a real (non-dummy) span.
    pub fn has_resolvable_span(&self) -> bool {
        self.primary.iter().any(|l| !l.span.is_dummy())
            || self.secondary.iter().any(|l| !l.span.is_dummy())
    }

    /// Every label, primary first.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.primary.iter().chain(self.secondary.iter())
    }
}

impl fmt::Display for Diagnostic {
    /// One-line rendering (no snippets): `error[R3001]: message at 3:1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(p) = &self.primary {
            if !p.span.is_dummy() {
                write!(f, " at {}", p.span.lo)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn builder_and_display() {
        let d = Diagnostic::error("R0001", "parse error: unexpected token")
            .with_primary(Span::new(Pos::new(3, 7), Pos::new(3, 13)), "here")
            .with_note("check the syntax")
            .with_payload("stage", "parse");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.has_resolvable_span());
        assert_eq!(d.labels().count(), 1);
        assert_eq!(
            d.to_string(),
            "error[R0001]: parse error: unexpected token at 3:7"
        );
    }

    #[test]
    fn severity_labels_roundtrip() {
        for s in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_label(s.label()), Some(s));
        }
        assert_eq!(Severity::from_label("fatal"), None);
    }

    #[test]
    fn dummy_spans_are_not_resolvable() {
        let d = Diagnostic::error("R0110", "boom");
        assert!(!d.has_resolvable_span());
        assert!(d.span().is_dummy());
        assert_eq!(d.to_string(), "error[R0110]: boom");
    }
}
