//! The registry of stable diagnostic codes.
//!
//! Codes are grouped by pipeline stage:
//!
//! * `R0xxx` — frontend (lexing, parsing, evaluation, graph construction);
//! * `R1xxx` — resource compilation and modeling;
//! * `R2xxx` — static-analysis (lint) findings — solver-free rules over
//!   the AST, catalog, resource graph, and footprints;
//! * `R3xxx` — analysis findings (determinism, idempotence, budgets).
//!
//! Every [`Diagnostic`](crate::Diagnostic) the pipeline emits must use a
//! code from this table (enforced by a property test in the workspace);
//! external consumers can rely on the codes being stable across releases.

/// One registered diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `R3001`.
    pub code: &'static str,
    /// One-line summary of what the code means.
    pub summary: &'static str,
}

/// Syntax error from the lexer or parser.
pub const SYNTAX_ERROR: &str = "R0001";
/// A variable was referenced before assignment.
pub const UNDEFINED_VARIABLE: &str = "R0101";
/// `include`/class reference to an unknown class.
pub const UNKNOWN_CLASS: &str = "R0102";
/// A resource declaration used an unknown type.
pub const UNKNOWN_RESOURCE_TYPE: &str = "R0103";
/// The same resource (type + title) was declared twice.
pub const DUPLICATE_RESOURCE: &str = "R0104";
/// A dependency references a resource that is not in the catalog.
pub const UNKNOWN_REFERENCE: &str = "R0105";
/// A referenced stage does not exist.
pub const UNKNOWN_STAGE: &str = "R0106";
/// A required parameter of a defined type or class was not supplied.
pub const MISSING_PARAMETER: &str = "R0107";
/// An unexpected parameter was supplied to a defined type or class.
pub const UNEXPECTED_PARAMETER: &str = "R0108";
/// A class was declared resource-style more than once.
pub const DUPLICATE_CLASS: &str = "R0109";
/// Any other semantic evaluation error (e.g. `fail()` was called).
pub const EVAL_ERROR: &str = "R0110";
/// The dependency graph contains a cycle.
pub const DEPENDENCY_CYCLE: &str = "R0201";
/// The resource type is not modeled by the compiler.
pub const UNMODELED_TYPE: &str = "R1001";
/// `exec` resources cannot be verified (paper §8).
pub const EXEC_UNSUPPORTED: &str = "R1002";
/// A required attribute is missing.
pub const MISSING_ATTRIBUTE: &str = "R1003";
/// An attribute has an unsupported or malformed value.
pub const INVALID_ATTRIBUTE: &str = "R1004";
/// A `package` resource references a package missing from the database.
pub const UNKNOWN_PACKAGE: &str = "R1005";
/// A path attribute failed to parse.
pub const BAD_PATH: &str = "R1006";
/// `ensure => latest` modeling note (aliased or version-bumped).
pub const LATEST_MODELING: &str = "R1101";
/// Lint: two resources whose footprints may overlap have no ordering
/// between them (a sound solver-free race pre-screen).
pub const LINT_RACE_CANDIDATE: &str = "R2001";
/// Lint: a service depends on a file it plausibly consumes but is not
/// notified of changes (`require` instead of `subscribe`/`~>`).
pub const LINT_MISSING_NOTIFIER: &str = "R2002";
/// Lint: a resource reference never declared anywhere in the manifest
/// (including dead branches evaluation never reached).
pub const LINT_UNDECLARED_REFERENCE: &str = "R2003";
/// Lint: two `file` resources manage the same path.
pub const LINT_DUPLICATE_PATH: &str = "R2004";
/// Lint: a variable is assigned but never used.
pub const LINT_UNUSED_VARIABLE: &str = "R2005";
/// Lint: a class or defined-type parameter is never used in its body.
pub const LINT_UNUSED_PARAMETER: &str = "R2006";
/// Lint: a resource reads a path an earlier-declared resource writes,
/// relying on declaration order with no explicit dependency.
pub const LINT_IMPLICIT_ORDERING: &str = "R2007";
/// Lint: a `mode` attribute is not a 3–4 digit octal string.
pub const LINT_INVALID_MODE: &str = "R2008";
/// Lint: a resource declares a dependency on itself (silently dropped by
/// the evaluator).
pub const LINT_SELF_DEPENDENCY: &str = "R2009";
/// The manifest is non-deterministic: two resources race.
pub const NONDETERMINISTIC: &str = "R3001";
/// The manifest is not idempotent.
pub const NONIDEMPOTENT: &str = "R3002";
/// The analysis ran out of time, space, or was cancelled.
pub const ANALYSIS_ABORTED: &str = "R3003";

/// Every registered code with its summary (the table in the README's
/// "Diagnostics & error codes" section is generated from this list).
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: SYNTAX_ERROR,
        summary: "syntax error (lexer or parser)",
    },
    CodeInfo {
        code: UNDEFINED_VARIABLE,
        summary: "variable referenced before assignment",
    },
    CodeInfo {
        code: UNKNOWN_CLASS,
        summary: "reference to an unknown class",
    },
    CodeInfo {
        code: UNKNOWN_RESOURCE_TYPE,
        summary: "declaration of an unknown resource type",
    },
    CodeInfo {
        code: DUPLICATE_RESOURCE,
        summary: "the same resource declared twice",
    },
    CodeInfo {
        code: UNKNOWN_REFERENCE,
        summary: "dependency references an undeclared resource",
    },
    CodeInfo {
        code: UNKNOWN_STAGE,
        summary: "referenced stage does not exist",
    },
    CodeInfo {
        code: MISSING_PARAMETER,
        summary: "required parameter not supplied",
    },
    CodeInfo {
        code: UNEXPECTED_PARAMETER,
        summary: "unexpected parameter supplied",
    },
    CodeInfo {
        code: DUPLICATE_CLASS,
        summary: "class declared resource-style more than once",
    },
    CodeInfo {
        code: EVAL_ERROR,
        summary: "semantic evaluation error",
    },
    CodeInfo {
        code: DEPENDENCY_CYCLE,
        summary: "dependency cycle in the resource graph",
    },
    CodeInfo {
        code: UNMODELED_TYPE,
        summary: "resource type not modeled by the compiler",
    },
    CodeInfo {
        code: EXEC_UNSUPPORTED,
        summary: "exec resources cannot be verified",
    },
    CodeInfo {
        code: MISSING_ATTRIBUTE,
        summary: "required attribute missing",
    },
    CodeInfo {
        code: INVALID_ATTRIBUTE,
        summary: "unsupported or malformed attribute value",
    },
    CodeInfo {
        code: UNKNOWN_PACKAGE,
        summary: "package not in the package database",
    },
    CodeInfo {
        code: BAD_PATH,
        summary: "path attribute failed to parse",
    },
    CodeInfo {
        code: LATEST_MODELING,
        summary: "`ensure => latest` modeling note",
    },
    CodeInfo {
        code: LINT_RACE_CANDIDATE,
        summary: "overlapping footprints with no ordering (race candidate)",
    },
    CodeInfo {
        code: LINT_MISSING_NOTIFIER,
        summary: "service depends on a file without subscribing to it",
    },
    CodeInfo {
        code: LINT_UNDECLARED_REFERENCE,
        summary: "reference to a resource never declared in the manifest",
    },
    CodeInfo {
        code: LINT_DUPLICATE_PATH,
        summary: "multiple file resources manage the same path",
    },
    CodeInfo {
        code: LINT_UNUSED_VARIABLE,
        summary: "variable assigned but never used",
    },
    CodeInfo {
        code: LINT_UNUSED_PARAMETER,
        summary: "class or define parameter never used",
    },
    CodeInfo {
        code: LINT_IMPLICIT_ORDERING,
        summary: "read-after-write relies on declaration order",
    },
    CodeInfo {
        code: LINT_INVALID_MODE,
        summary: "mode is not a 3-4 digit octal string",
    },
    CodeInfo {
        code: LINT_SELF_DEPENDENCY,
        summary: "resource depends on itself",
    },
    CodeInfo {
        code: NONDETERMINISTIC,
        summary: "two resources race: orders produce different outcomes",
    },
    CodeInfo {
        code: NONIDEMPOTENT,
        summary: "applying twice differs from applying once",
    },
    CodeInfo {
        code: ANALYSIS_ABORTED,
        summary: "analysis exceeded its budget or was cancelled",
    },
];

/// Looks up a code in the registry.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

/// Whether a code is registered.
pub fn is_registered(code: &str) -> bool {
    code_info(code).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for c in REGISTRY {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
            assert!(c.code.starts_with('R') && c.code.len() == 5, "{}", c.code);
            assert!(c.code[1..].chars().all(|d| d.is_ascii_digit()));
            assert!(!c.summary.is_empty());
        }
    }

    #[test]
    fn lookup() {
        assert!(is_registered(NONDETERMINISTIC));
        assert!(!is_registered("R9999"));
        assert_eq!(code_info(SYNTAX_ERROR).unwrap().code, "R0001");
    }
}
