//! **rehearsal-diag** — the unified diagnostics surface of Rehearsal.
//!
//! Every stage of the pipeline (lexer, parser, evaluator, resource
//! compiler, the determinacy/idempotence analyses) reports findings as one
//! [`Diagnostic`] type: a severity, a stable code (see [`codes`]), a
//! headline message, a primary source [`Span`] plus secondary labels, and
//! free-form notes. A [`SourceMap`] owns file-id → text and renders
//! rustc-style snippets with carets; machine consumers get the same data
//! as a stable JSON encoding (serialized by `rehearsal-fleet`).
//!
//! This is what lets the analysis say not just *"Package\[ntp\] and
//! File\[/etc/ntp.conf\] race"* but point at the two racing resource
//! declarations in the manifest, with both snippets.
//!
//! # Examples
//!
//! ```
//! use rehearsal_diag::{codes, Diagnostic, Pos, SourceMap, Span};
//!
//! let src = "file { '/etc/motd': content => 'hi' }\n";
//! let map = SourceMap::single("motd.pp", src);
//! let d = Diagnostic::error(codes::NONDETERMINISTIC, "resources race")
//!     .with_primary(Span::new(Pos::new(1, 1), Pos::new(1, 5)), "races");
//! assert!(map.render(&d).contains("--> motd.pp:1:1"));
//! ```

#![warn(missing_docs)]

pub mod codes;
mod diagnostic;
mod source_map;
mod span;

pub use diagnostic::{Diagnostic, Label, Severity};
pub use source_map::{FileId, RenderOptions, SourceMap};
pub use span::{Pos, Span};
