//! The source map: file-id → (name, text), plus the rustc-style snippet
//! renderer for diagnostics.

use crate::diagnostic::{Diagnostic, Label, Severity};
use std::fmt::Write;

/// Identifies a file registered in a [`SourceMap`]. Single-file pipelines
/// (one manifest per analysis) use [`FileId::MAIN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FileId(pub u32);

impl FileId {
    /// The first (and, for single-manifest pipelines, only) file.
    pub const MAIN: FileId = FileId(0);
}

#[derive(Debug, Clone)]
struct SourceFile {
    name: String,
    lines: Vec<String>,
}

/// Owns registered source texts and renders diagnostics against them.
///
/// # Examples
///
/// ```
/// use rehearsal_diag::{codes, Diagnostic, Pos, SourceMap, Span};
///
/// let map = SourceMap::single("site.pp", "file { '/x': }\n");
/// let d = Diagnostic::warning(codes::LATEST_MODELING, "modeling note")
///     .with_primary(Span::new(Pos::new(1, 1), Pos::new(1, 5)), "declared here");
/// let text = map.render(&d);
/// assert!(text.starts_with("warning[R1101]: modeling note"));
/// assert!(text.contains("--> site.pp:1:1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

/// Rendering knobs for the human format.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderOptions {
    /// Emit ANSI colors.
    pub color: bool,
}

impl RenderOptions {
    /// Plain (no color) rendering.
    pub fn plain() -> RenderOptions {
        RenderOptions { color: false }
    }

    /// Color on.
    pub fn colored() -> RenderOptions {
        RenderOptions { color: true }
    }

    /// Honors the `NO_COLOR` convention (and dumb/absent terminals):
    /// color only when `NO_COLOR` is unset and `TERM` is set to something
    /// other than `dumb`.
    pub fn from_env() -> RenderOptions {
        let no_color = std::env::var_os("NO_COLOR").is_some();
        let term_ok = std::env::var("TERM")
            .map(|t| !t.is_empty() && t != "dumb")
            .unwrap_or(false);
        RenderOptions {
            color: !no_color && term_ok,
        }
    }
}

impl SourceMap {
    /// An empty map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// A map holding exactly one file as [`FileId::MAIN`].
    pub fn single(name: impl Into<String>, text: &str) -> SourceMap {
        let mut map = SourceMap::new();
        map.add(name, text);
        map
    }

    /// Registers a file, returning its id.
    pub fn add(&mut self, name: impl Into<String>, text: &str) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile {
            name: name.into(),
            lines: text.lines().map(str::to_string).collect(),
        });
        id
    }

    /// The registered name of a file (empty when unknown).
    pub fn name(&self, file: FileId) -> &str {
        self.files
            .get(file.0 as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("")
    }

    /// One line of a file's text (1-based), if it exists.
    pub fn line(&self, file: FileId, line: u32) -> Option<&str> {
        let f = self.files.get(file.0 as usize)?;
        f.lines.get(line.checked_sub(1)? as usize).map(|s| &**s)
    }

    /// Number of lines in a file.
    pub fn line_count(&self, file: FileId) -> usize {
        self.files
            .get(file.0 as usize)
            .map(|f| f.lines.len())
            .unwrap_or(0)
    }

    /// Renders a diagnostic with snippets, plain (no color).
    pub fn render(&self, d: &Diagnostic) -> String {
        self.render_with(d, RenderOptions::plain())
    }

    /// Renders a diagnostic with snippets against [`FileId::MAIN`].
    pub fn render_with(&self, d: &Diagnostic, opts: RenderOptions) -> String {
        self.render_in(d, FileId::MAIN, opts)
    }

    /// Renders a diagnostic whose spans point into `file`.
    pub fn render_in(&self, d: &Diagnostic, file: FileId, opts: RenderOptions) -> String {
        let mut out = String::new();
        let paint = Paint::new(opts.color);

        // Header: error[R3001]: message
        let sev_color = match d.severity {
            Severity::Error => paint.red_bold(),
            Severity::Warning => paint.yellow_bold(),
            Severity::Note => paint.cyan_bold(),
        };
        let _ = writeln!(
            out,
            "{sev_color}{}[{}]{rst}{bold}: {}{rst}",
            d.severity,
            d.code,
            d.message,
            rst = paint.reset(),
            bold = paint.bold(),
        );

        // Gutter width across all labels.
        let width = d
            .labels()
            .filter(|l| !l.span.is_dummy())
            .map(|l| digits(l.span.lo.line))
            .max()
            .unwrap_or(1);

        for (i, label) in d.labels().enumerate() {
            let primary = i == 0 && d.primary.is_some();
            self.render_label(&mut out, file, label, primary, width, &paint);
        }
        for note in &d.notes {
            let _ = writeln!(
                out,
                "{pad} {blue}= note:{rst} {note}",
                pad = " ".repeat(width),
                blue = paint.blue_bold(),
                rst = paint.reset(),
            );
        }
        out
    }

    fn render_label(
        &self,
        out: &mut String,
        file: FileId,
        label: &Label,
        primary: bool,
        width: usize,
        paint: &Paint,
    ) {
        let span = label.span;
        if span.is_dummy() {
            if !label.message.is_empty() {
                let _ = writeln!(
                    out,
                    "{pad} {blue}= {rst}{}",
                    label.message,
                    pad = " ".repeat(width),
                    blue = paint.blue_bold(),
                    rst = paint.reset(),
                );
            }
            return;
        }
        let blue = paint.blue_bold();
        let rst = paint.reset();
        let pad = " ".repeat(width);
        let _ = writeln!(
            out,
            "{pad}{blue}-->{rst} {}:{}:{}",
            self.name(file),
            span.lo.line,
            span.lo.col,
        );
        let Some(line_text) = self.line(file, span.lo.line) else {
            return; // span beyond the registered text: location only
        };
        let _ = writeln!(out, "{pad} {blue}|{rst}");
        let _ = writeln!(
            out,
            "{blue}{num:>width$} |{rst} {line_text}",
            num = span.lo.line,
        );
        // Carets under the span: to hi.col on the same line, else to EOL.
        let line_len = line_text.chars().count() as u32;
        let start = span.lo.col.clamp(1, line_len.max(1) + 1);
        let end = if span.hi.line == span.lo.line && span.hi.col > start {
            span.hi.col.min(line_len + 1)
        } else {
            (line_len + 1).max(start + 1)
        };
        let marker = if primary { "^" } else { "-" };
        let marker_color = if primary {
            paint.red_bold()
        } else {
            paint.blue_bold()
        };
        let _ = writeln!(
            out,
            "{pad} {blue}|{rst} {space}{marker_color}{carets}{rst}{msg}",
            space = " ".repeat(start as usize - 1),
            carets = marker.repeat((end - start).max(1) as usize),
            msg = if label.message.is_empty() {
                String::new()
            } else {
                format!(" {}", label.message)
            },
        );
    }
}

fn digits(n: u32) -> usize {
    (n.max(1)).ilog10() as usize + 1
}

/// Minimal ANSI paintbox.
struct Paint {
    on: bool,
}

impl Paint {
    fn new(on: bool) -> Paint {
        Paint { on }
    }
    fn code(&self, s: &'static str) -> &'static str {
        if self.on {
            s
        } else {
            ""
        }
    }
    fn reset(&self) -> &'static str {
        self.code("\x1b[0m")
    }
    fn bold(&self) -> &'static str {
        self.code("\x1b[1m")
    }
    fn red_bold(&self) -> &'static str {
        self.code("\x1b[1;31m")
    }
    fn yellow_bold(&self) -> &'static str {
        self.code("\x1b[1;33m")
    }
    fn cyan_bold(&self) -> &'static str {
        self.code("\x1b[1;36m")
    }
    fn blue_bold(&self) -> &'static str {
        self.code("\x1b[1;34m")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    fn diag() -> Diagnostic {
        Diagnostic::error("R0104", "duplicate declaration of Package[vim]")
            .with_primary(
                Span::new(Pos::new(2, 1), Pos::new(2, 8)),
                "second declaration",
            )
            .with_secondary(
                Span::new(Pos::new(1, 1), Pos::new(1, 8)),
                "first declared here",
            )
            .with_note("remove one of the declarations")
    }

    const SRC: &str = "package { 'vim': }\npackage { 'vim': }\n";

    #[test]
    fn renders_snippets_with_carets_and_dashes() {
        let map = SourceMap::single("dup.pp", SRC);
        let text = map.render(&diag());
        assert!(
            text.contains("error[R0104]: duplicate declaration"),
            "{text}"
        );
        assert!(text.contains("--> dup.pp:2:1"), "{text}");
        assert!(text.contains("--> dup.pp:1:1"), "{text}");
        assert!(text.contains("2 | package { 'vim': }"), "{text}");
        assert!(text.contains("^^^^^^^ second declaration"), "{text}");
        assert!(text.contains("------- first declared here"), "{text}");
        assert!(text.contains("= note: remove one"), "{text}");
        assert!(!text.contains('\x1b'), "plain render has no ANSI codes");
    }

    #[test]
    fn color_render_wraps_with_ansi() {
        let map = SourceMap::single("dup.pp", SRC);
        let text = map.render_with(&diag(), RenderOptions::colored());
        assert!(text.contains("\x1b[1;31m"), "red for errors: {text:?}");
        assert!(text.contains("\x1b[0m"));
    }

    #[test]
    fn spans_past_eof_degrade_to_location_only() {
        let map = SourceMap::single("x.pp", "one line\n");
        let d = Diagnostic::error("R0001", "boom").with_primary(Span::at(Pos::new(99, 1)), "here");
        let text = map.render(&d);
        assert!(text.contains("--> x.pp:99:1"), "{text}");
        assert!(
            !text.contains("99 |"),
            "no snippet for missing line: {text}"
        );
    }

    #[test]
    fn caret_width_clamps_to_line() {
        let map = SourceMap::single("x.pp", "ab\n");
        let d = Diagnostic::error("R0001", "late")
            .with_primary(Span::new(Pos::new(1, 1), Pos::new(1, 200)), "");
        let text = map.render(&d);
        assert!(text.contains("| ^^"), "{text}");
        assert!(!text.contains("^^^^"), "{text}");
    }

    #[test]
    fn multi_file_maps() {
        let mut map = SourceMap::new();
        let a = map.add("a.pp", "aaa\n");
        let b = map.add("b.pp", "bbb\nccc\n");
        assert_eq!(map.name(a), "a.pp");
        assert_eq!(map.line(b, 2), Some("ccc"));
        assert_eq!(map.line_count(b), 2);
        assert_eq!(map.line(b, 3), None);
    }
}
