//! Source positions and spans.
//!
//! Every layer of the pipeline — lexer, parser, evaluator, resource
//! compiler, analyses — annotates what it produces with [`Span`]s so a
//! finding at the very end (a determinism race between two compiled FS
//! programs) can still point back into the manifest text it came from.

use std::fmt;

/// A position in source text: 1-based line and column. The zero value
/// (`line == 0`) is the *dummy* position of synthesized nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text: `lo` inclusive, `hi` exclusive.
///
/// Spans are *metadata*, not content: the derived `PartialEq`/`Hash` of
/// every AST and catalog type that carries a span must not distinguish two
/// otherwise-identical nodes parsed from differently-formatted sources
/// (the printer round-trip property `parse ∘ print = id` depends on
/// this). `Span` therefore implements `PartialEq`/`Ord`/`Hash` as if all
/// spans were equal; use [`Span::same`] to compare actual locations.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// Start (inclusive).
    pub lo: Pos,
    /// End (exclusive).
    pub hi: Pos,
}

impl Span {
    /// A span covering `lo..hi`.
    pub fn new(lo: Pos, hi: Pos) -> Span {
        Span { lo, hi }
    }

    /// A zero-width span at one position.
    pub fn at(pos: Pos) -> Span {
        Span { lo: pos, hi: pos }
    }

    /// The dummy span of synthesized nodes (no source location).
    pub const DUMMY: Span = Span {
        lo: Pos { line: 0, col: 0 },
        hi: Pos { line: 0, col: 0 },
    };

    /// Whether this is the dummy span (no real source location).
    pub fn is_dummy(&self) -> bool {
        self.lo.line == 0
    }

    /// The smallest span covering both `self` and `other`; a dummy
    /// operand yields the other span.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Location-aware equality (the `PartialEq` impl deliberately is not;
    /// see the type docs).
    pub fn same(&self, other: &Span) -> bool {
        self.lo == other.lo && self.hi == other.hi
    }
}

// Spans are metadata: all spans compare equal and hash identically so that
// `#[derive(PartialEq, Hash)]` on span-carrying AST/catalog nodes keeps
// comparing *content* (see the type documentation).
impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}
impl Eq for Span {}
impl std::hash::Hash for Span {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {}
}
impl PartialOrd for Span {
    fn partial_cmp(&self, other: &Span) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Span {
    fn cmp(&self, _other: &Span) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_and_joins() {
        assert!(Span::DUMMY.is_dummy());
        let a = Span::new(Pos::new(1, 2), Pos::new(1, 5));
        assert!(!a.is_dummy());
        let b = Span::new(Pos::new(3, 1), Pos::new(3, 4));
        let j = a.to(b);
        assert_eq!(j.lo, Pos::new(1, 2));
        assert_eq!(j.hi, Pos::new(3, 4));
        assert!(Span::DUMMY.to(a).same(&a));
        assert!(a.to(Span::DUMMY).same(&a));
    }

    #[test]
    fn spans_compare_as_metadata() {
        let a = Span::new(Pos::new(1, 1), Pos::new(1, 2));
        let b = Span::new(Pos::new(9, 9), Pos::new(9, 10));
        assert_eq!(a, b, "derived AST equality must ignore spans");
        assert!(!a.same(&b), "same() sees the real locations");
    }
}
