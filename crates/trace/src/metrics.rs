//! The typed metrics registry: counters, gauges, histograms.
//!
//! Names are dotted, lowercase, `layer.metric` (e.g. `arena.dedup_hits`,
//! `explore.cache_hits`, `sat.conflicts`, `fleet.steals`) — the
//! Prometheus exporter later rewrites dots to underscores. Hot loops do
//! **not** hammer this registry per event; the pipeline's existing local
//! stats structs are *published* into it at phase boundaries, so a locked
//! `BTreeMap` is plenty fast and keeps snapshots deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Power-of-two histogram buckets: bucket `i` counts values in
/// `(2^(i-1), 2^i]`, with bucket 0 counting zeros and ones.
pub const HIST_BUCKETS: usize = 32;

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Hist {
    fn observe(&mut self, value: u64) {
        let idx = if value <= 1 {
            0
        } else {
            ((64 - (value - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Hist>,
}

/// `entry()` without allocating when the key already exists (the steady
/// state: every metric allocates its name exactly once per registry).
fn bump(map: &mut BTreeMap<String, u64>, name: &str, delta: u64) {
    if let Some(v) = map.get_mut(name) {
        *v += delta;
    } else {
        map.insert(name.to_string(), delta);
    }
}

/// A session-scoped metrics registry.
///
/// All mutation goes through one mutex; instrumentation sites publish at
/// phase boundaries (not per hot-loop event), so contention is nil.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to counter `name` (created at 0 on first touch).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        bump(&mut inner.counters, name, delta);
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.gauges.get_mut(name) {
            *v = value;
        } else {
            inner.gauges.insert(name.to_string(), value);
        }
    }

    /// Raises gauge `name` to `value` if higher (high-water mark).
    pub fn gauge_max(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            inner.gauges.insert(name.to_string(), value);
        }
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(h) = inner.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Hist::default();
            h.observe(value);
            inner.hists.insert(name.to_string(), h);
        }
    }

    /// Folds a finished snapshot (e.g. from a completed per-job session)
    /// into this registry, with [`MetricsSnapshot::merge`] semantics:
    /// counters and histograms add, gauges keep the maximum.
    pub fn merge_snapshot(&self, other: &MetricsSnapshot) {
        let mut inner = self.inner.lock().unwrap();
        for (k, v) in &other.counters {
            bump(&mut inner.counters, k, *v);
        }
        for (k, v) in &other.gauges {
            if let Some(slot) = inner.gauges.get_mut(k) {
                *slot = (*slot).max(*v);
            } else {
                inner.gauges.insert(k.clone(), *v);
            }
        }
        for (k, v) in &other.hists {
            if let Some(h) = inner.hists.get_mut(k) {
                h.merge(v);
            } else {
                inner.hists.insert(k.clone(), v.clone());
            }
        }
    }

    /// Takes an immutable, owned copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner.hists.clone(),
        }
    }
}

/// A histogram's summary, as exposed by [`MetricsSnapshot::histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts; bucket `i` covers `(2^(i-1), 2^i]` (bucket 0:
    /// values ≤ 1).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

/// An immutable copy of a [`Registry`], mergeable across sessions (the
/// fleet aggregates per-job snapshots into one report-level view).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Hist>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The summary of histogram `name`, if it ever observed a value.
    pub fn histogram(&self, name: &str) -> Option<HistSnapshot> {
        self.hists.get(name).map(|h| HistSnapshot {
            buckets: h.buckets.to_vec(),
            count: h.count,
            sum: h.sum,
            max: h.max,
        })
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.hists.keys().map(|k| k.as_str())
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges keep the maximum (they are high-water marks across jobs).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add("a.x", 1);
        r.counter_add("a.x", 2);
        r.counter_add("b.y", 5);
        let s = r.snapshot();
        assert_eq!(s.counter("a.x"), Some(3));
        assert_eq!(s.counter("b.y"), Some(5));
        assert_eq!(s.counter("missing"), None);
        let names: Vec<_> = s.counters().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["a.x", "b.y"]); // sorted
    }

    #[test]
    fn gauges_set_and_max() {
        let r = Registry::new();
        r.gauge_set("q.depth", 3);
        r.gauge_max("q.depth", 1); // lower, ignored
        r.gauge_max("q.depth", 9);
        r.gauge_max("fresh", -2); // max on untouched gauge
        let s = r.snapshot();
        assert_eq!(s.gauge("q.depth"), Some(9));
        assert_eq!(s.gauge("fresh"), Some(-2));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let r = Registry::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            r.observe("h", v);
        }
        let h = r.snapshot().histogram("h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 2); // 0, 1
        assert_eq!(h.buckets[1], 1); // 2
        assert_eq!(h.buckets[2], 2); // 3, 4
        assert_eq!(h.buckets[10], 1); // 1000 ∈ (512, 1024]
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let a = Registry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 4);
        a.observe("h", 8);
        let b = Registry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 2);
        b.observe("h", 16);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("c"), Some(5));
        assert_eq!(m.counter("only_b"), Some(1));
        assert_eq!(m.gauge("g"), Some(4)); // max, not last
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 24);
        assert_eq!(h.max, 16);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(Registry::new().snapshot().is_empty());
        let r = Registry::new();
        r.counter_add("x", 0);
        assert!(!r.snapshot().is_empty());
    }
}
