//! **rehearsal-trace** — the always-compiled observability subsystem.
//!
//! Rehearsal's evaluation is all about *where time goes* (pruning vs.
//! exploration vs. SAT, paper fig. 11–13), so every layer of the pipeline
//! is instrumented against this crate:
//!
//! * [`Session`] — a collection scope for one profiled activity (a `check`
//!   run, one fleet job, a bench sample). Sessions install either
//!   process-globally or per-thread; the fleet engine gives each job its
//!   own thread-scoped session so concurrent jobs never mix.
//! * [`span`] — phase-scoped, nested wall-clock timing
//!   (`parse → eval → lower → eliminate → prune → explore → solve`).
//!   Guards record on drop; nesting comes from a thread-local stack.
//! * [`Registry`] — a typed metrics registry (counters, gauges,
//!   histograms) fed by the pipeline's stats structs at phase boundaries
//!   and by sampled hot-path events.
//! * [`event`] — sampling-bounded instant events from hot loops (the
//!   explorer DFS, the CDCL conflict loop). Call sites keep a local
//!   counter and only call in when [`is_active`] — which is a single
//!   atomic load — so the disabled-mode overhead is one branch.
//! * Export: [`TraceSnapshot::render_tree`] (the `--timings` human tree),
//!   [`TraceSnapshot::to_chrome_trace`] (Chrome trace-event JSON for
//!   `chrome://tracing` / Perfetto), and
//!   [`MetricsSnapshot::to_prometheus`] (Prometheus textfile export, the
//!   seam a future `rehearsal serve` daemon will scrape).
//!
//! # Examples
//!
//! ```
//! use rehearsal_trace as trace;
//!
//! let session = trace::Session::new();
//! {
//!     let _scope = session.install();
//!     {
//!         let _parse = trace::span("parse");
//!         // ... work ...
//!     }
//!     trace::counter_add("arena.dedup_hits", 42);
//! }
//! let snap = session.snapshot();
//! assert_eq!(snap.spans.len(), 1);
//! assert_eq!(snap.metrics.counter("arena.dedup_hits"), Some(42));
//! assert!(snap.to_chrome_trace().contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]

mod export;
mod metrics;
mod session;

pub use export::{sanitize_metric_name, PhaseTotal};
pub use metrics::{HistSnapshot, MetricsSnapshot, Registry};
pub use session::{
    current, event, is_active, span, span_cat, EventRecord, ScopeGuard, Session, SpanGuard,
    SpanRecord, TraceSnapshot, NO_PARENT,
};

/// Adds `delta` to counter `name` in the current session's registry, if a
/// session is active on this thread. One atomic load when inactive.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_active() {
        return;
    }
    if let Some(s) = current() {
        s.metrics().counter_add(name, delta);
    }
}

/// Sets gauge `name` to `value` in the current session's registry.
#[inline]
pub fn gauge_set(name: &'static str, value: i64) {
    if !is_active() {
        return;
    }
    if let Some(s) = current() {
        s.metrics().gauge_set(name, value);
    }
}

/// Raises gauge `name` to `value` if `value` is higher (high-water mark).
#[inline]
pub fn gauge_max(name: &'static str, value: i64) {
    if !is_active() {
        return;
    }
    if let Some(s) = current() {
        s.metrics().gauge_max(name, value);
    }
}

/// Records `value` into histogram `name` in the current session's
/// registry.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_active() {
        return;
    }
    if let Some(s) = current() {
        s.metrics().observe(name, value);
    }
}
