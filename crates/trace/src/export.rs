//! Renderers: Chrome trace-event JSON, the `--timings` tree, Prometheus
//! textfile export, and per-phase totals for the JSON schemas.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::session::{SpanRecord, TraceSnapshot, NO_PARENT};

/// Aggregated wall time of one top-level phase, for `check --json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Phase (root span) name.
    pub name: String,
    /// Total wall time across all same-named root spans, µs.
    pub total_us: u64,
    /// Number of same-named root spans merged into this row.
    pub count: u64,
}

impl TraceSnapshot {
    /// Aggregates root spans by name, in first-appearance order — the
    /// `phases` object of `rehearsal-check/5` and fleet rows.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            if s.parent != NO_PARENT {
                continue;
            }
            if !totals.contains_key(s.name) {
                order.push(s.name);
            }
            let e = totals.entry(s.name).or_insert((0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
        order
            .into_iter()
            .map(|name| {
                let (total_us, count) = totals[name];
                PhaseTotal {
                    name: name.to_string(),
                    total_us,
                    count,
                }
            })
            .collect()
    }

    /// Renders Chrome trace-event JSON (the `--trace <file>` payload),
    /// loadable in `chrome://tracing` and Perfetto. Spans become complete
    /// (`"ph":"X"`) events, sampled events become instants (`"ph":"i"`),
    /// and the metrics snapshot rides along under `"rehearsalMetrics"`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                json_str(s.name),
                json_str(s.cat),
                s.start_us,
                s.dur_us,
                s.tid
            );
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                json_str(e.name),
                json_str(e.cat),
                e.ts_us,
                e.tid
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"rehearsalMetrics\":{");
        let mut first = true;
        for (k, v) in self.metrics.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_str(k), v);
        }
        for (k, v) in self.metrics.gauges() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{}:{}", json_str(k), v);
        }
        out.push_str("}}");
        out
    }

    /// Renders the human `--timings` tree. Same-named siblings merge into
    /// one line with a `×count`; durations are right-aligned milliseconds.
    pub fn render_tree(&self) -> String {
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            children.entry(s.parent).or_default().push(s);
        }
        let mut out = String::new();
        render_level(&children, NO_PARENT, 0, &mut out);
        if !self.events.is_empty() {
            let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
            for e in &self.events {
                *counts.entry(e.name).or_insert(0) += 1;
            }
            let _ = writeln!(out, "sampled events:");
            for (name, n) in counts {
                let _ = writeln!(out, "  {name} ×{n}");
            }
        }
        out
    }
}

/// Merges same-named siblings and renders one indentation level.
fn render_level(
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    parent: u64,
    depth: usize,
    out: &mut String,
) {
    let Some(kids) = children.get(&parent) else {
        return;
    };
    // Merge same-named siblings, preserving first-appearance order.
    let mut order: Vec<&'static str> = Vec::new();
    let mut merged: BTreeMap<&'static str, (u64, u64, Vec<u64>)> = BTreeMap::new();
    for s in kids {
        if !merged.contains_key(s.name) {
            order.push(s.name);
        }
        let e = merged.entry(s.name).or_insert((0, 0, Vec::new()));
        e.0 += s.dur_us;
        e.1 += 1;
        e.2.push(s.id);
    }
    for name in order {
        let (total_us, count, ids) = &merged[name];
        let indent = "  ".repeat(depth);
        let label = if *count > 1 {
            format!("{name} ×{count}")
        } else {
            name.to_string()
        };
        let _ = writeln!(
            out,
            "{indent}{label:<width$} {:>9.3} ms",
            *total_us as f64 / 1000.0,
            width = 28usize.saturating_sub(indent.len()),
        );
        for id in ids {
            render_level(children, *id, depth + 1, out);
        }
    }
}

impl MetricsSnapshot {
    /// Renders the registry in the Prometheus text exposition format
    /// (the `fleet --metrics <file>` payload; the seam a future
    /// `rehearsal serve` will expose over HTTP). Metric names are
    /// prefixed `rehearsal_` and dots become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE rehearsal_{n}_total counter");
            let _ = writeln!(out, "rehearsal_{n}_total {v}");
        }
        for (name, v) in self.gauges() {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE rehearsal_{n} gauge");
            let _ = writeln!(out, "rehearsal_{n} {v}");
        }
        for name in self.histogram_names().collect::<Vec<_>>() {
            let h = self.histogram(name).expect("listed histogram exists");
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE rehearsal_{n} histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                if *b == 0 {
                    continue;
                }
                cumulative += b;
                let le = if i == 0 { 1u64 } else { 1u64 << i };
                let _ = writeln!(out, "rehearsal_{n}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "rehearsal_{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "rehearsal_{n}_sum {}", h.sum);
            let _ = writeln!(out, "rehearsal_{n}_count {}", h.count);
        }
        out
    }
}

/// Rewrites a dotted metric name into a Prometheus-safe one: dots and
/// dashes become underscores, anything else non-alphanumeric is dropped.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '.' | '-' | ' ' => '_',
            c if c.is_ascii_alphanumeric() || c == '_' => c,
            _ => '_',
        })
        .collect()
}

/// Escapes a string for JSON (the trace file is hand-rolled — the
/// workspace is dependency-free by design).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::span;

    fn sample_session() -> TraceSnapshot {
        let session = Session::new();
        let _scope = session.install();
        {
            let _check = span("check");
            {
                let _parse = span("parse");
            }
            {
                let _explore = span("explore");
                crate::event("explore.frame", "core");
            }
        }
        session.metrics().counter_add("arena.nodes", 10);
        session.metrics().gauge_set("fleet.queue_depth_max", 3);
        session.metrics().observe("sat.decisions", 100);
        session.snapshot()
    }

    #[test]
    fn chrome_trace_shape() {
        let snap = sample_session();
        let json = snap.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"explore\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"rehearsalMetrics\":{"));
        assert!(json.contains("\"arena.nodes\":10"));
        // Balanced braces/brackets — cheap well-formedness check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn phase_totals_merge_roots_in_order() {
        let session = Session::new();
        let _scope = session.install();
        {
            let _a = span("parse");
        }
        {
            let _b = span("explore");
        }
        {
            let _c = span("parse");
        }
        let totals = session.snapshot().phase_totals();
        let names: Vec<_> = totals.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["parse", "explore"]);
        assert_eq!(totals[0].count, 2);
        assert_eq!(totals[1].count, 1);
    }

    #[test]
    fn tree_render_merges_and_indents() {
        let snap = sample_session();
        let tree = snap.render_tree();
        assert!(tree.contains("check"));
        assert!(tree.contains("  parse"));
        assert!(tree.contains("  explore"));
        assert!(tree.contains("sampled events:"));
        assert!(tree.contains("explore.frame ×1"));
    }

    #[test]
    fn prometheus_format() {
        let snap = sample_session();
        let text = snap.metrics.to_prometheus();
        assert!(text.contains("# TYPE rehearsal_arena_nodes_total counter"));
        assert!(text.contains("rehearsal_arena_nodes_total 10"));
        assert!(text.contains("# TYPE rehearsal_fleet_queue_depth_max gauge"));
        assert!(text.contains("rehearsal_fleet_queue_depth_max 3"));
        assert!(text.contains("# TYPE rehearsal_sat_decisions histogram"));
        assert!(text.contains("rehearsal_sat_decisions_bucket{le=\"128\"} 1"));
        assert!(text.contains("rehearsal_sat_decisions_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("rehearsal_sat_decisions_sum 100"));
        assert!(text.contains("rehearsal_sat_decisions_count 1"));
    }

    #[test]
    fn sanitizer() {
        assert_eq!(sanitize_metric_name("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("solve.final"), "solve_final");
        assert_eq!(sanitize_metric_name("ok_name9"), "ok_name9");
        assert_eq!(sanitize_metric_name("weird!ché"), "weird_ch_");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
