//! Sessions, spans, and instant events.
//!
//! A [`Session`] is the collection scope for one profiled activity. The
//! global activity count is a single `AtomicUsize`, so [`is_active`] — the
//! check every instrumentation site performs first — is one relaxed atomic
//! load when no session exists anywhere in the process.
//!
//! Installation is two-tier:
//!
//! * [`Session::install`] puts the session in a thread-local slot. The
//!   fleet engine uses this to give each job its own session on whichever
//!   worker thread runs it, so concurrent jobs never mix records.
//! * [`Session::install_global`] additionally publishes the session
//!   process-wide, so helper threads spawned *during* the session (none
//!   today, but the roadmap has multi-core exploration) still resolve it.
//!   The thread-local slot always wins over the global one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

use crate::metrics::{MetricsSnapshot, Registry};

/// Number of installed sessions process-wide. Zero ⇒ every entry point
/// bails after one relaxed load.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Process-global fallback session (behind the thread-local slot).
static GLOBAL: OnceLock<Mutex<Option<Session>>> = OnceLock::new();

thread_local! {
    /// Sessions installed on this thread, innermost last.
    static CURRENT: std::cell::RefCell<Vec<Session>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Open span ids on this thread, innermost last (parent linkage).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Parent id of a root span.
pub const NO_PARENT: u64 = u64::MAX;

/// Is any trace session installed anywhere in the process? One relaxed
/// atomic load — this is the whole disabled-mode cost.
#[inline]
pub fn is_active() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// The session visible to this thread: the innermost thread-local one,
/// else the process-global one.
pub fn current() -> Option<Session> {
    let local = CURRENT.with(|c| c.borrow().last().cloned());
    if local.is_some() {
        return local;
    }
    GLOBAL
        .get()
        .and_then(|g| g.lock().ok().and_then(|s| s.clone()))
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the session.
    pub id: u64,
    /// Id of the enclosing span, or [`NO_PARENT`].
    pub parent: u64,
    /// Phase name (e.g. `"explore"`).
    pub name: &'static str,
    /// Category for trace viewers (e.g. `"core"`).
    pub cat: &'static str,
    /// Start, µs since the session epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Session-relative thread id (0 for the installing thread).
    pub tid: u32,
}

/// A sampled instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name (e.g. `"explore.frame"`).
    pub name: &'static str,
    /// Category for trace viewers.
    pub cat: &'static str,
    /// Timestamp, µs since the session epoch.
    pub ts_us: u64,
    /// Session-relative thread id.
    pub tid: u32,
}

struct SessionInner {
    epoch: Instant,
    next_span: AtomicUsize,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    /// OS thread id → stable session-relative small int. The installing
    /// thread maps to 0, so single-threaded traces are reproducible.
    tids: Mutex<HashMap<ThreadId, u32>>,
    metrics: Registry,
}

/// A collection scope for spans, events, and metrics.
///
/// Cheap to clone (an `Arc`). Create one per profiled activity, install
/// it for the activity's duration, then take a [`snapshot`](Session::snapshot).
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Creates a fresh, uninstalled session.
    pub fn new() -> Session {
        let inner = SessionInner {
            epoch: Instant::now(),
            next_span: AtomicUsize::new(0),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            tids: Mutex::new(HashMap::new()),
            metrics: Registry::new(),
        };
        let s = Session {
            inner: Arc::new(inner),
        };
        // Pre-register the creating thread as tid 0.
        s.tid();
        s
    }

    /// Installs the session on the current thread until the guard drops.
    #[must_use = "the session is uninstalled when the guard drops"]
    pub fn install(&self) -> ScopeGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        ScopeGuard { global: false }
    }

    /// Installs the session on the current thread *and* as the process
    /// fallback for threads with no local session, until the guard drops.
    #[must_use = "the session is uninstalled when the guard drops"]
    pub fn install_global(&self) -> ScopeGuard {
        let slot = GLOBAL.get_or_init(|| Mutex::new(None));
        *slot.lock().unwrap() = Some(self.clone());
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        ACTIVE_SESSIONS.fetch_add(1, Ordering::Relaxed);
        ScopeGuard { global: true }
    }

    /// The session's metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }

    /// Session-relative id of the calling thread (0 = creating thread).
    fn tid(&self) -> u32 {
        let id = std::thread::current().id();
        let mut map = self.inner.tids.lock().unwrap();
        let next = map.len() as u32;
        *map.entry(id).or_insert(next)
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn record_span(&self, rec: SpanRecord) {
        self.inner.spans.lock().unwrap().push(rec);
    }

    /// Records an instant event (callers sample before calling in).
    pub fn record_event(&self, name: &'static str, cat: &'static str) {
        let rec = EventRecord {
            name,
            cat,
            ts_us: self.now_us(),
            tid: self.tid(),
        };
        self.inner.events.lock().unwrap().push(rec);
    }

    /// Takes an immutable copy of everything recorded so far. Spans are
    /// sorted by start time; open spans are not included.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans = self.inner.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| (s.start_us, s.id));
        let events = self.inner.events.lock().unwrap().clone();
        TraceSnapshot {
            spans,
            events,
            metrics: self.inner.metrics.snapshot(),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("spans", &self.inner.spans.lock().unwrap().len())
            .field("events", &self.inner.events.lock().unwrap().len())
            .finish()
    }
}

/// Uninstalls a session when dropped (returned by [`Session::install`]).
pub struct ScopeGuard {
    global: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
        if self.global {
            if let Some(slot) = GLOBAL.get() {
                *slot.lock().unwrap() = None;
            }
        }
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Opens a span named `name` in category `"rehearsal"`; it closes (and is
/// recorded) when the returned guard drops. No-op without a session.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "rehearsal")
}

/// Opens a span with an explicit category (shown as a lane grouping hint
/// in trace viewers).
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    if !is_active() {
        return SpanGuard { open: None };
    }
    let Some(session) = current() else {
        return SpanGuard { open: None };
    };
    let id = session.inner.next_span.fetch_add(1, Ordering::Relaxed) as u64;
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(NO_PARENT);
        s.push(id);
        parent
    });
    let start_us = session.now_us();
    let tid = session.tid();
    SpanGuard {
        open: Some(OpenSpan {
            session,
            id,
            parent,
            name,
            cat,
            start_us,
            tid,
        }),
    }
}

/// Records a sampled instant event. Callers in hot loops should keep a
/// local counter and only call this every N iterations.
#[inline]
pub fn event(name: &'static str, cat: &'static str) {
    if !is_active() {
        return;
    }
    if let Some(s) = current() {
        s.record_event(name, cat);
    }
}

struct OpenSpan {
    session: Session,
    id: u64,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    tid: u32,
}

/// An open span; recording happens when it drops.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; tolerate disorder from mem::forget abuse.
            if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.remove(pos);
            }
        });
        let end = open.session.now_us();
        open.session.record_span(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            cat: open.cat,
            start_us: open.start_us,
            dur_us: end.saturating_sub(open.start_us),
            tid: open.tid,
        });
    }
}

/// Everything a session recorded: spans, events, and a metrics snapshot.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Completed spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Sampled instant events, in record order.
    pub events: Vec<EventRecord>,
    /// The metrics registry at snapshot time.
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default_and_spans_are_noops() {
        // NB: tests run concurrently; another test may have a session
        // installed, so only assert the no-session path on *this* thread.
        let before = CURRENT.with(|c| c.borrow().len());
        assert_eq!(before, 0);
        let g = span("orphan");
        drop(g); // must not panic, records nowhere
        event("orphan.event", "test");
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let session = Session::new();
        let _scope = session.install();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span_cat("inner", "test");
            }
        }
        let snap = session.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, NO_PARENT);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.cat, "test");
        assert!(outer.dur_us >= inner.dur_us);
        assert_eq!(outer.tid, 0);
    }

    #[test]
    fn install_is_scoped_to_guard() {
        let session = Session::new();
        {
            let _scope = session.install();
            assert!(is_active());
            let _s = span("scoped");
        }
        // After the guard drops, new spans on this thread don't record
        // into the session.
        let _orphan = span("after");
        drop(_orphan);
        let snap = session.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "scoped");
    }

    #[test]
    fn nested_install_innermost_wins() {
        let outer = Session::new();
        let inner = Session::new();
        let _og = outer.install();
        {
            let _ig = inner.install();
            let _s = span("in-inner");
        }
        let _s = span("in-outer");
        drop(_s);
        assert_eq!(outer.snapshot().spans.len(), 1);
        assert_eq!(outer.snapshot().spans[0].name, "in-outer");
        assert_eq!(inner.snapshot().spans.len(), 1);
        assert_eq!(inner.snapshot().spans[0].name, "in-inner");
    }

    #[test]
    fn global_install_reaches_other_threads() {
        let session = Session::new();
        let _scope = session.install_global();
        let handle = std::thread::spawn(|| {
            let _s = span("from-helper");
        });
        handle.join().unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "from-helper");
        assert_ne!(snap.spans[0].tid, 0);
    }

    #[test]
    fn events_record_with_session() {
        let session = Session::new();
        let _scope = session.install();
        event("tick", "test");
        event("tick", "test");
        let snap = session.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].name, "tick");
    }

    #[test]
    fn counters_route_to_current_session() {
        let session = Session::new();
        let _scope = session.install();
        crate::counter_add("test.count", 2);
        crate::counter_add("test.count", 3);
        crate::gauge_set("test.gauge", 7);
        crate::gauge_max("test.gauge", 5); // lower: no change
        crate::gauge_max("test.gauge", 9);
        crate::observe("test.hist", 4);
        let m = session.snapshot().metrics;
        assert_eq!(m.counter("test.count"), Some(5));
        assert_eq!(m.gauge("test.gauge"), Some(9));
        assert_eq!(m.histogram("test.hist").unwrap().count, 1);
    }
}
