//! The content-addressed verdict cache.
//!
//! Analyzed jobs are stored under the *semantic* key
//! `hash(graph_digest, platform, AnalysisOptions)` ([`graph_key`]), where
//! the digest is the canonical structural digest of the lowered resource
//! graph — so a rerun after a formatting, comment, or resource-reorder
//! edit still hits warm, and renaming or moving a manifest file never
//! misses (the key embeds no path). Only jobs that fail to *lower* fall
//! back to the raw-source key ([`job_key`]): a formatting edit can change
//! a parse error, so source text is exactly the right identity there.
//! The on-disk format is JSONL (one entry per line), append-friendly and
//! greppable; loads tolerate and skip corrupt lines so a torn write can
//! never poison a CI gate.

use crate::json::{diagnostic_from_json, diagnostic_json, parse, Json};
use crate::report::Verdict;
use rehearsal_core::AnalysisOptions;
use rehearsal_diag::Diagnostic;
use rehearsal_pkgdb::Platform;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A cached verdict (everything needed to reconstruct a report row).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable detail.
    pub detail: String,
    /// Resources in the manifest's graph.
    pub resources: usize,
    /// The source-anchored findings recorded at analysis time, so cache
    /// hits can replay per-line annotations without re-analysis.
    pub diagnostics: Vec<Diagnostic>,
}

/// An in-memory verdict cache with an optional JSONL backing file.
#[derive(Debug, Default)]
pub struct VerdictCache {
    entries: HashMap<u64, CachedVerdict>,
    path: Option<PathBuf>,
    dirty: bool,
}

/// FNV-1a, the classic dependency-free 64-bit content hash.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over one byte string from the standard offset basis — the
/// workspace's dependency-free content hash, shared by the baseline
/// store, the serve daemon's request memo, and the tamper-evident
/// history chain.
pub fn fnv1a_digest(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// The cache schema version. Bump whenever the analyzer can produce a
/// different verdict (or different verdict-bearing detail) for the same
/// `(source, platform, options)` input — e.g. the version-2 bump when the
/// explorer core was rewritten (bitset POR, state dedup, incremental
/// early-exit SAT), and the version-3 bump for the metadata-aware model
/// (a new `model_metadata` key dimension) plus the stage-assignment
/// bugfix (stage edges for late-declared members changed, which can flip
/// verdicts of stage-using manifests), and the version-4 bump for the
/// unified diagnostics API (entries now carry the job's source-anchored
/// `diagnostics`, which older entries cannot supply), and the version-5
/// bump for semantic cache keys (analyzed jobs are keyed on the canonical
/// digest of the lowered graph instead of raw source bytes, a different
/// key space entirely — schema-4 source-keyed entries must read as
/// misses). The version is both mixed into every key *and* stored per
/// entry, so caches written by an older analyzer are read back as
/// all-miss rather than served stale.
pub const CACHE_SCHEMA_VERSION: u32 = 5;

/// Salt mixed into every key so a persisted cache cannot serve verdicts
/// produced by a different analyzer version or cache schema: any release
/// may change the analysis logic, and the workspace version bumps with
/// it. Derived from [`CACHE_SCHEMA_VERSION`] so a schema bump cannot
/// drift out of the key space.
fn key_salt() -> String {
    format!(
        "rehearsal-fleet-cache/{}/schema-{}",
        env!("CARGO_PKG_VERSION"),
        CACHE_SCHEMA_VERSION
    )
}

/// The source-text cache key for one job: analyzer version, source
/// bytes, platform, and every analysis option that can change the
/// verdict. Since schema 5 this keys only jobs that fail to lower (parse
/// and evaluation errors are functions of the exact source text);
/// analyzed verdicts use the semantic [`graph_key`].
pub fn job_key(source: &str, platform: Platform, options: &AnalysisOptions) -> u64 {
    let h = fnv1a(FNV_OFFSET, key_salt().as_bytes());
    let h = fnv1a(h, b"source");
    let h = fnv1a(h, source.as_bytes());
    finish_key(h, platform, options)
}

/// The semantic cache key for one analyzed job: analyzer version, the
/// canonical structural digest of the lowered resource graph
/// (`rehearsal_core::footprint::graph_digest`), platform, and every
/// analysis option that can change the verdict. Manifests that lower to
/// the same graph — formatting, comments, resource reordering, or a file
/// rename — share a key.
pub fn graph_key(graph_digest: u64, platform: Platform, options: &AnalysisOptions) -> u64 {
    let h = fnv1a(FNV_OFFSET, key_salt().as_bytes());
    let h = fnv1a(h, b"graph");
    let h = fnv1a(h, &graph_digest.to_le_bytes());
    finish_key(h, platform, options)
}

/// A fingerprint of everything *except* the manifest content that can
/// change a verdict: analyzer version, cache schema, platform, and
/// analysis options. Baseline entries are scoped by it so a baseline
/// recorded under one configuration is never consulted under another.
pub fn options_fingerprint(platform: Platform, options: &AnalysisOptions) -> u64 {
    finish_key(fnv1a(FNV_OFFSET, key_salt().as_bytes()), platform, options)
}

fn finish_key(state: u64, platform: Platform, options: &AnalysisOptions) -> u64 {
    let mut h = fnv1a(state, platform.to_string().as_bytes());
    h = fnv1a(
        h,
        &[
            options.commutativity as u8,
            options.elimination as u8,
            options.pruning as u8,
            // Modeling options change verdicts just like reductions do:
            // a metadata-aware verdict must never answer a metadata-free
            // query (or vice versa), and likewise for `latest` modeling.
            options.model_metadata as u8,
            options.model_latest as u8,
        ],
    );
    h = fnv1a(h, &(options.max_sequences as u64).to_le_bytes());
    let timeout_ms = options
        .timeout
        .map(|t| t.as_millis() as u64)
        .unwrap_or(u64::MAX);
    fnv1a(h, &timeout_ms.to_le_bytes())
}

impl VerdictCache {
    /// An empty cache with no backing file.
    pub fn in_memory() -> VerdictCache {
        VerdictCache::default()
    }

    /// Opens (or initializes) a cache backed by `path`. A missing file is
    /// an empty cache; malformed lines are skipped.
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found".
    pub fn open(path: impl AsRef<Path>) -> io::Result<VerdictCache> {
        let path = path.as_ref().to_path_buf();
        let mut cache = VerdictCache {
            entries: HashMap::new(),
            path: Some(path.clone()),
            dirty: false,
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(cache),
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(entry) = parse(line) else { continue };
            let Some((key, cached)) = decode_entry(&entry) else {
                continue;
            };
            cache.entries.insert(key, cached);
        }
        Ok(cache)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a job key up.
    pub fn get(&self, key: u64) -> Option<&CachedVerdict> {
        self.entries.get(&key)
    }

    /// Records a verdict. Timeouts are deliberately not cached: a rerun
    /// with more headroom may well complete.
    pub fn put(&mut self, key: u64, verdict: CachedVerdict) {
        if verdict.verdict == Verdict::Timeout {
            return;
        }
        if self.entries.insert(key, verdict).is_none() {
            self.dirty = true;
        }
    }

    /// Writes the cache back to its backing file (a no-op for in-memory
    /// caches or when nothing changed). Rewrites the whole file, which
    /// also compacts duplicate lines from older appends.
    ///
    /// # Errors
    ///
    /// I/O errors from create/write.
    pub fn save(&mut self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let mut file = std::fs::File::create(path)?;
        for key in keys {
            let entry = encode_entry(key, &self.entries[&key]);
            writeln!(file, "{}", entry.render())?;
        }
        self.dirty = false;
        Ok(())
    }
}

fn encode_entry(key: u64, cached: &CachedVerdict) -> Json {
    Json::obj([
        ("schema", Json::num(CACHE_SCHEMA_VERSION)),
        ("key", Json::str(format!("{key:016x}"))),
        ("verdict", Json::str(cached.verdict.label())),
        ("detail", Json::str(&cached.detail)),
        ("resources", Json::num(cached.resources as u32)),
        (
            "diagnostics",
            Json::Arr(cached.diagnostics.iter().map(diagnostic_json).collect()),
        ),
    ])
}

fn decode_entry(entry: &Json) -> Option<(u64, CachedVerdict)> {
    // A missing or older schema tag means the entry was produced by a
    // different explorer core: treat it as a miss (the line is dropped on
    // the next save).
    let schema = entry.get("schema")?.as_u64()?;
    if schema != u64::from(CACHE_SCHEMA_VERSION) {
        return None;
    }
    let key = u64::from_str_radix(entry.get("key")?.as_str()?, 16).ok()?;
    let verdict = Verdict::from_label(entry.get("verdict")?.as_str()?)?;
    let detail = entry.get("detail")?.as_str()?.to_string();
    let resources = entry.get("resources")?.as_u64()? as usize;
    let diagnostics = entry
        .get("diagnostics")?
        .as_arr()?
        .iter()
        .map(diagnostic_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some((
        key,
        CachedVerdict {
            verdict,
            detail,
            resources,
            diagnostics,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn key_depends_on_all_inputs() {
        let base = job_key("file { '/x': }", Platform::Ubuntu, &opts());
        assert_eq!(base, job_key("file { '/x': }", Platform::Ubuntu, &opts()));
        assert_ne!(base, job_key("file { '/y': }", Platform::Ubuntu, &opts()));
        assert_ne!(base, job_key("file { '/x': }", Platform::Centos, &opts()));
        let mut other = opts();
        other.pruning = false;
        assert_ne!(base, job_key("file { '/x': }", Platform::Ubuntu, &other));
        let timed = opts().with_timeout(std::time::Duration::from_secs(60));
        assert_ne!(base, job_key("file { '/x': }", Platform::Ubuntu, &timed));
    }

    #[test]
    fn graph_key_depends_on_digest_platform_and_options() {
        let base = graph_key(0xfeed, Platform::Ubuntu, &opts());
        assert_eq!(base, graph_key(0xfeed, Platform::Ubuntu, &opts()));
        assert_ne!(base, graph_key(0xbeef, Platform::Ubuntu, &opts()));
        assert_ne!(base, graph_key(0xfeed, Platform::Centos, &opts()));
        let mut other = opts();
        other.model_metadata = true;
        assert_ne!(base, graph_key(0xfeed, Platform::Ubuntu, &other));
    }

    #[test]
    fn graph_and_source_key_spaces_are_disjoint() {
        // A lowering-error entry must never answer a semantic lookup
        // (or vice versa), even on a contrived hash-input collision.
        let digest = 0x736f_7572_6365u64; // "source" as bytes
        assert_ne!(
            graph_key(digest, Platform::Ubuntu, &opts()),
            job_key("source", Platform::Ubuntu, &opts())
        );
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("rehearsal-fleet-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut cache = VerdictCache::open(&path).unwrap();
        assert!(cache.is_empty());
        cache.put(
            7,
            CachedVerdict {
                verdict: Verdict::Nondeterministic,
                detail: "orders diverge".to_string(),
                resources: 3,
                diagnostics: vec![rehearsal_diag::Diagnostic::error("R3001", "orders diverge")
                    .with_primary(
                        rehearsal_diag::Span::new(
                            rehearsal_diag::Pos::new(2, 1),
                            rehearsal_diag::Pos::new(2, 10),
                        ),
                        "here",
                    )],
            },
        );
        cache.save().unwrap();

        let reloaded = VerdictCache::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        let hit = reloaded.get(7).unwrap();
        assert_eq!(hit.verdict, Verdict::Nondeterministic);
        // Schema-4 entries restore source-anchored diagnostics, so warm
        // runs can emit per-line annotations without re-analysis.
        assert_eq!(hit.diagnostics.len(), 1);
        assert_eq!(hit.diagnostics[0].code, "R3001");
        assert_eq!(hit.diagnostics[0].span().lo.line, 2);
    }

    #[test]
    fn timeouts_are_not_cached() {
        let mut cache = VerdictCache::in_memory();
        cache.put(
            1,
            CachedVerdict {
                verdict: Verdict::Timeout,
                detail: String::new(),
                resources: 0,
                diagnostics: Vec::new(),
            },
        );
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn corrupt_lines_are_skipped() {
        let dir = std::env::temp_dir().join("rehearsal-fleet-cache-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let v = CACHE_SCHEMA_VERSION;
        std::fs::write(
            &path,
            format!(
                "not json at all\n\
                 {{\"schema\":{v},\"key\":\"0000000000000002\",\"verdict\":\"deterministic\",\"detail\":\"\",\"resources\":1,\"diagnostics\":[]}}\n\
                 {{\"schema\":{v},\"key\":\"zzz\",\"verdict\":\"deterministic\",\"detail\":\"\",\"resources\":1}}\n"
            ),
        )
        .unwrap();
        let cache = VerdictCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get(2).is_some());
    }

    #[test]
    fn stale_schema_entries_are_misses() {
        let dir = std::env::temp_dir().join("rehearsal-fleet-cache-stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        // A schema-1 era entry (no tag) and explicit older tags: all must
        // read back as misses, never as verdicts from an old analyzer. A
        // current-schema entry on the same file still loads.
        let v = CACHE_SCHEMA_VERSION;
        std::fs::write(
            &path,
            format!(
                "{{\"key\":\"0000000000000007\",\"verdict\":\"deterministic\",\"detail\":\"\",\"resources\":1}}\n\
                 {{\"schema\":1,\"key\":\"0000000000000008\",\"verdict\":\"nondeterministic\",\"detail\":\"\",\"resources\":1}}\n\
                 {{\"schema\":2,\"key\":\"000000000000000a\",\"verdict\":\"deterministic\",\"detail\":\"\",\"resources\":1}}\n\
                 {{\"schema\":{v},\"key\":\"0000000000000009\",\"verdict\":\"deterministic\",\"detail\":\"\",\"resources\":1,\"diagnostics\":[]}}\n"
            ),
        )
        .unwrap();
        let cache = VerdictCache::open(&path).unwrap();
        assert_eq!(cache.len(), 1, "only the current-schema entry survives");
        assert!(cache.get(7).is_none());
        assert!(cache.get(8).is_none());
        assert!(cache.get(9).is_some());
    }

    #[test]
    fn saved_entries_carry_the_schema_version() {
        let mut cache = VerdictCache::in_memory();
        cache.put(
            3,
            CachedVerdict {
                verdict: Verdict::Deterministic,
                detail: String::new(),
                resources: 2,
                diagnostics: Vec::new(),
            },
        );
        let entry = encode_entry(3, cache.get(3).unwrap());
        assert_eq!(
            entry.get("schema").and_then(Json::as_u64),
            Some(u64::from(CACHE_SCHEMA_VERSION))
        );
        // And the key salt separates schema generations: identical inputs
        // hash differently from any pre-bump binary because the current
        // schema version is always part of the salt.
        assert!(key_salt().ends_with(&format!("schema-{CACHE_SCHEMA_VERSION}")));
    }
}
