//! GitHub Actions workflow-command annotations from the diagnostics
//! stream.
//!
//! When the fleet gate runs inside GitHub Actions, lines of the form
//! `::error file=…,line=…,col=…::message` make findings appear inline on
//! the pull request's changed files. This module formats a
//! [`FleetReport`]'s per-row diagnostics into that syntax; the CLI prints
//! them behind `--annotations` when `GITHUB_ACTIONS` is set.

use crate::report::{FleetReport, JobResult};
use rehearsal_diag::{Diagnostic, Severity};
use std::fmt::Write;

/// Escapes a message for the data portion of a workflow command.
fn escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a property value (`file=` etc.).
fn escape_property(s: &str) -> String {
    escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

fn command_for(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "notice",
    }
}

/// One diagnostic as a workflow-command line, anchored into `file`.
/// Diagnostics without a resolvable span annotate the file without a line.
pub fn annotation_line(file: &str, d: &Diagnostic) -> String {
    let mut out = format!(
        "::{} file={}",
        command_for(d.severity),
        escape_property(file)
    );
    if let Some(p) = &d.primary {
        if !p.span.is_dummy() {
            let _ = write!(out, ",line={},col={}", p.span.lo.line, p.span.lo.col);
            if p.span.hi.line == p.span.lo.line && p.span.hi.col > p.span.lo.col {
                let _ = write!(out, ",endColumn={}", p.span.hi.col);
            } else if p.span.hi.line > p.span.lo.line {
                let _ = write!(out, ",endLine={}", p.span.hi.line);
            }
        }
    }
    let _ = write!(
        out,
        ",title={}::{}: {}",
        escape_property(&d.code),
        d.code,
        escape_data(&d.message)
    );
    out
}

/// Every annotation for one report row.
pub fn row_annotations(row: &JobResult) -> Vec<String> {
    row.diagnostics
        .iter()
        .map(|d| annotation_line(&row.manifest, d))
        .collect()
}

/// The full annotation stream for a fleet run (one line per diagnostic,
/// newline-terminated; empty string for a clean fleet).
pub fn github_annotations(report: &FleetReport) -> String {
    let mut out = String::new();
    for row in &report.rows {
        for line in row_annotations(row) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{AnalysisCounters, Verdict};
    use rehearsal_diag::{Pos, Span};
    use rehearsal_pkgdb::Platform;

    fn race_diag() -> Diagnostic {
        Diagnostic::error("R3001", "File[/etc/ntp.conf] and Package[ntp] race")
            .with_primary(
                Span::new(Pos::new(3, 1), Pos::new(3, 41)),
                "this resource races",
            )
            .with_secondary(Span::new(Pos::new(7, 1), Pos::new(7, 20)), "the other one")
    }

    fn row(diagnostics: Vec<Diagnostic>) -> JobResult {
        JobResult {
            manifest: "benchmarks/ntp-nondet.pp".to_string(),
            platform: Platform::Ubuntu,
            verdict: Verdict::Nondeterministic,
            detail: String::new(),
            resources: 3,
            millis: 1,
            queue_ms: 0,
            run_ms: 1,
            phases: Vec::new(),
            cached: false,
            counters: AnalysisCounters::default(),
            diagnostics,
            reuse: None,
        }
    }

    #[test]
    fn error_annotation_carries_file_line_and_code() {
        let line = annotation_line("benchmarks/ntp-nondet.pp", &race_diag());
        assert_eq!(
            line,
            "::error file=benchmarks/ntp-nondet.pp,line=3,col=1,endColumn=41,\
             title=R3001::R3001: File[/etc/ntp.conf] and Package[ntp] race"
        );
    }

    #[test]
    fn severities_map_to_commands() {
        let warn = Diagnostic::warning("R1101", "latest aliased")
            .with_primary(Span::at(Pos::new(2, 5)), "");
        assert!(annotation_line("a.pp", &warn).starts_with("::warning file=a.pp,line=2,col=5,"));
        let note = Diagnostic::note("R1101", "n");
        assert!(annotation_line("a.pp", &note).starts_with("::notice file=a.pp,title="));
    }

    #[test]
    fn messages_and_properties_are_escaped() {
        let d = Diagnostic::error("R0001", "parse error: line1\nline2 100%");
        let line = annotation_line("dir,with:commas.pp", &d);
        assert!(line.contains("file=dir%2Cwith%3Acommas.pp"), "{line}");
        assert!(line.contains("line1%0Aline2 100%25"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn report_stream_emits_warning_commands_for_warning_severity() {
        // A row can mix severities (e.g. an R3001 race plus R2xxx lint
        // findings); the stream must keep each diagnostic's own command
        // instead of flattening everything to `::error`.
        let warn = Diagnostic::warning("R2002", "Service[ntp] not notified of File[/etc/ntp.conf]")
            .with_primary(Span::at(Pos::new(12, 3)), "ordering-only dependency");
        let note = Diagnostic::note("R2007", "reads rely on declaration order");
        let report = FleetReport {
            rows: vec![row(vec![race_diag(), warn, note])],
            wall_millis: 1,
            jobs: 1,
            threads: 1,
            steals: 0,
            max_queue_depth: 1,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        let stream = github_annotations(&report);
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with("::error file=benchmarks/ntp-nondet.pp"),
            "{stream}"
        );
        assert!(
            lines[1].starts_with("::warning file=benchmarks/ntp-nondet.pp,line=12,col=3"),
            "{stream}"
        );
        assert!(lines[1].contains("R2002"), "{stream}");
        assert!(
            lines[2].starts_with("::notice file=benchmarks/ntp-nondet.pp"),
            "{stream}"
        );
    }

    #[test]
    fn report_stream_is_one_line_per_diagnostic() {
        let report = FleetReport {
            rows: vec![row(vec![race_diag()]), row(Vec::new())],
            wall_millis: 1,
            jobs: 1,
            threads: 1,
            steals: 0,
            max_queue_depth: 1,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        let stream = github_annotations(&report);
        assert_eq!(stream.lines().count(), 1);
        assert!(stream.starts_with("::error file=benchmarks/ntp-nondet.pp,line=3"));
        let clean = FleetReport {
            rows: vec![row(Vec::new())],
            wall_millis: 1,
            jobs: 1,
            threads: 1,
            steals: 0,
            max_queue_depth: 1,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        assert_eq!(github_annotations(&clean), "");
    }
}
