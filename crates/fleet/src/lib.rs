//! **rehearsal-fleet** — parallel batch verification for Rehearsal.
//!
//! Rehearsal verifies one manifest at a time; real deployments hold
//! hundreds across platforms and want a CI gate over all of them. This
//! crate turns the single-shot pipeline into a batch engine:
//!
//! * [`discover_manifests`] / [`read_manifest_list`] — find the fleet's
//!   `.pp` files (directory walk, or an explicit list file);
//! * [`FleetEngine`] — a work-stealing parallel scheduler over scoped
//!   threads running the full determinism + idempotence pipeline per
//!   `(manifest, platform)` job, with per-job deadlines and cooperative
//!   cancellation ([`rehearsal_core::CancelToken`]);
//! * [`VerdictCache`] — a content-addressed verdict cache keyed by
//!   `hash(graph_digest, platform, AnalysisOptions)` — the canonical
//!   structural digest of the lowered graph, so formatting, comment,
//!   reorder, and rename edits still hit warm — with an on-disk JSONL
//!   store;
//! * [`BaselineStore`] — the differential-verification baseline
//!   (`--baseline FILE`): per-manifest graph digests, footprint
//!   summaries, and pair commutativity verdicts, so a rerun after an
//!   edit re-analyzes only the dirty cone and reuses the rest;
//! * [`FleetReport`] — per-manifest verdict rows plus aggregate counters,
//!   rendered as a human table or stable JSON for pipelines (the
//!   `rehearsal fleet` CLI gates on [`FleetReport::all_clean`]).
//!
//! # Examples
//!
//! ```
//! use rehearsal_fleet::{FleetEngine, FleetJob, FleetOptions, Verdict};
//! use rehearsal_pkgdb::Platform;
//!
//! let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
//! let report = engine.run(vec![FleetJob {
//!     name: "motd.pp".to_string(),
//!     source: "file { '/etc/motd': content => 'hello' }".to_string(),
//!     platform: Platform::Ubuntu,
//! }]);
//! assert!(report.all_clean());
//! assert_eq!(report.rows[0].verdict, Verdict::Deterministic);
//! ```

#![warn(missing_docs)]

pub mod annotations;
pub mod baseline;
pub mod cache;
pub mod discover;
pub mod engine;
pub mod json;
pub mod report;
pub mod scheduler;
pub mod state;

pub use annotations::{annotation_line, github_annotations, row_annotations};
pub use baseline::{BaselineEntry, BaselineStore, ResourceSummary, BASELINE_SCHEMA_VERSION};
pub use cache::{
    fnv1a_digest, graph_key, job_key, options_fingerprint, CachedVerdict, VerdictCache,
    CACHE_SCHEMA_VERSION,
};
pub use discover::{discover_manifests, read_manifest_list};
pub use engine::{verify_directory, FleetEngine, FleetJob, FleetOptions};
pub use json::{diagnostic_from_json, diagnostic_json, parse as parse_json, Json, JsonError};
pub use report::{
    check_document, check_document_from_row, metrics_json, AnalysisCounters, FleetCounts,
    FleetReport, JobResult, ReuseCounts, Verdict,
};
pub use scheduler::{run_work_stealing, run_work_stealing_with_stats, SchedulerStats};
pub use state::{StateDir, STATE_BASELINE_FILE, STATE_CACHE_FILE};
