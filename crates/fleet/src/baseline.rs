//! The differential-verification baseline store.
//!
//! A baseline file (`rehearsal fleet --baseline FILE`) persists, per
//! manifest, everything a later run needs to re-verify in time
//! proportional to the *diff*:
//!
//! - the canonical **graph digest** of the lowered resource graph — if it
//!   matches, the recorded verdict is replayed with zero re-analysis;
//! - per-resource **footprint summaries** (structural digest plus
//!   read/write/ensured/meta/observed path sets, serialized as path
//!   strings so a
//!   later process can reason about resources an edit *removed*);
//! - the **per-pair commutativity verdicts** keyed by digest pair, which
//!   seed a `CommuteOracle` for the clean remainder of an edited graph;
//! - the **pruning decisions** (read-only path residues), revalidated —
//!   not trusted — on replay, since they are linear-time to recompute;
//! - the recorded verdict, detail, and source-anchored diagnostics.
//!
//! The on-disk format is JSONL like the verdict cache: one entry per
//! line, schema-tagged, append-friendly; corrupt or stale-schema lines
//! read as misses. Entries are keyed by `(manifest name, options
//! fingerprint)` — the fingerprint covers analyzer version, platform, and
//! analysis options — with a digest-based fallback lookup so a renamed
//! but unedited manifest still reuses its entry.

use crate::cache::fnv1a_digest;
use crate::json::{diagnostic_from_json, diagnostic_json, parse, Json};
use crate::report::Verdict;
use rehearsal_diag::Diagnostic;
use rehearsal_pkgdb::Platform;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The baseline file schema version. Bump whenever entry contents change
/// meaning (digest scheme, footprint fields, pair encoding); stale-schema
/// lines are skipped on load, so an old baseline degrades to a cold run.
pub const BASELINE_SCHEMA_VERSION: u32 = 1;

/// One resource's persisted footprint summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceSummary {
    /// Structural digest of the resource's FS program.
    pub digest: u64,
    /// Paths the program reads.
    pub reads: Vec<String>,
    /// Paths the program writes or creates.
    pub writes: Vec<String>,
    /// Directories the program idempotently ensures (guarded mkdir).
    pub ensured: Vec<String>,
    /// Paths whose metadata the program manages or observes.
    pub meta: Vec<String>,
    /// Directories whose children the program observes.
    pub observed: Vec<String>,
}

/// One manifest's baseline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Display name (usually the manifest's discovery path). Informational
    /// and a lookup key; content identity lives in `graph_digest`.
    pub manifest: String,
    /// Target platform the entry was recorded under.
    pub platform: Platform,
    /// Fingerprint of analyzer version + platform + analysis options.
    pub options: u64,
    /// Canonical digest of the lowered resource graph.
    pub graph_digest: u64,
    /// Per-resource footprint summaries, in graph order.
    pub resources: Vec<ResourceSummary>,
    /// Dependency edges between resource indices.
    pub edges: Vec<(usize, usize)>,
    /// Per-pair commutativity verdicts, keyed by (digest, digest) with
    /// the smaller digest first.
    pub pairs: Vec<(u64, u64, bool)>,
    /// Paths the pruning pass decided were read-only residues.
    pub pruned: Vec<String>,
    /// The recorded verdict.
    pub verdict: Verdict,
    /// Human-readable verdict detail.
    pub detail: String,
    /// Source-anchored findings recorded at analysis time.
    pub diagnostics: Vec<Diagnostic>,
}

/// An in-memory baseline store with an optional JSONL backing file.
#[derive(Debug, Default)]
pub struct BaselineStore {
    entries: HashMap<(String, u64), BaselineEntry>,
    path: Option<PathBuf>,
    dirty: bool,
}

impl BaselineStore {
    /// An empty store with no backing file.
    pub fn in_memory() -> BaselineStore {
        BaselineStore::default()
    }

    /// Opens (or initializes) a store backed by `path`. A missing file is
    /// an empty store; malformed or stale-schema lines are skipped.
    ///
    /// # Errors
    ///
    /// I/O errors other than "not found".
    pub fn open(path: impl AsRef<Path>) -> io::Result<BaselineStore> {
        let path = path.as_ref().to_path_buf();
        let mut store = BaselineStore {
            entries: HashMap::new(),
            path: Some(path.clone()),
            dirty: false,
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(json) = parse(line) else { continue };
            let Some(entry) = decode_entry(&json) else {
                continue;
            };
            store
                .entries
                .insert((entry.manifest.clone(), entry.options), entry);
        }
        Ok(store)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry recorded for this manifest under this options
    /// fingerprint, if any.
    pub fn get(&self, manifest: &str, options: u64) -> Option<&BaselineEntry> {
        self.entries.get(&(manifest.to_string(), options))
    }

    /// Any entry with this graph digest under this options fingerprint —
    /// the rename-proof fallback: a moved manifest with identical lowered
    /// structure reuses its old entry wholesale.
    pub fn find_by_digest(&self, graph_digest: u64, options: u64) -> Option<&BaselineEntry> {
        self.entries
            .values()
            .filter(|e| e.options == options && e.graph_digest == graph_digest)
            .min_by(|a, b| a.manifest.cmp(&b.manifest))
    }

    /// Iterates every entry (order unspecified) — the raw material for
    /// coverage/drift rollups, which snapshot pinned verdicts before a
    /// run re-records them.
    pub fn entries(&self) -> impl Iterator<Item = &BaselineEntry> {
        self.entries.values()
    }

    /// Consumes the store and returns an identical one with no backing
    /// file: saves become no-ops. A coverage gate reads pins through a
    /// detached store so inspecting drift never silently re-pins.
    #[must_use]
    pub fn detached(mut self) -> BaselineStore {
        self.path = None;
        self.dirty = false;
        self
    }

    /// Records (or replaces) the entry for `(entry.manifest,
    /// entry.options)`.
    pub fn put(&mut self, entry: BaselineEntry) {
        self.entries
            .insert((entry.manifest.clone(), entry.options), entry);
        self.dirty = true;
    }

    /// Writes the store back to its backing file (a no-op for in-memory
    /// stores or when nothing changed).
    ///
    /// # Errors
    ///
    /// I/O errors from create/write.
    pub fn save(&mut self) -> io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        let mut keys: Vec<&(String, u64)> = self.entries.keys().collect();
        keys.sort();
        let mut file = std::fs::File::create(path)?;
        for key in keys {
            writeln!(file, "{}", encode_entry(&self.entries[key]).render())?;
        }
        self.dirty = false;
        Ok(())
    }
}

fn hex(v: u64) -> Json {
    Json::str(format!("{v:016x}"))
}

fn from_hex(j: &Json) -> Option<u64> {
    u64::from_str_radix(j.as_str()?, 16).ok()
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(Json::str).collect())
}

fn decode_str_arr(j: &Json) -> Option<Vec<String>> {
    j.as_arr()?
        .iter()
        .map(|s| s.as_str().map(str::to_string))
        .collect()
}

fn encode_entry(entry: &BaselineEntry) -> Json {
    Json::obj([
        ("schema", Json::num(BASELINE_SCHEMA_VERSION)),
        ("manifest", Json::str(&entry.manifest)),
        ("platform", Json::str(entry.platform.to_string())),
        ("options", hex(entry.options)),
        ("graph_digest", hex(entry.graph_digest)),
        (
            "resources",
            Json::Arr(
                entry
                    .resources
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("digest", hex(r.digest)),
                            ("reads", str_arr(&r.reads)),
                            ("writes", str_arr(&r.writes)),
                            ("ensured", str_arr(&r.ensured)),
                            ("meta", str_arr(&r.meta)),
                            ("observed", str_arr(&r.observed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                entry
                    .edges
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::num(a as u32), Json::num(b as u32)]))
                    .collect(),
            ),
        ),
        (
            "pairs",
            Json::Arr(
                entry
                    .pairs
                    .iter()
                    .map(|&(a, b, commute)| Json::Arr(vec![hex(a), hex(b), Json::Bool(commute)]))
                    .collect(),
            ),
        ),
        ("pruned", str_arr(&entry.pruned)),
        ("verdict", Json::str(entry.verdict.label())),
        ("detail", Json::str(&entry.detail)),
        (
            "diagnostics",
            Json::Arr(entry.diagnostics.iter().map(diagnostic_json).collect()),
        ),
    ])
}

fn decode_entry(json: &Json) -> Option<BaselineEntry> {
    if json.get("schema")?.as_u64()? != u64::from(BASELINE_SCHEMA_VERSION) {
        return None;
    }
    let resources = json
        .get("resources")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(ResourceSummary {
                digest: from_hex(r.get("digest")?)?,
                reads: decode_str_arr(r.get("reads")?)?,
                writes: decode_str_arr(r.get("writes")?)?,
                ensured: decode_str_arr(r.get("ensured")?)?,
                meta: decode_str_arr(r.get("meta")?)?,
                observed: decode_str_arr(r.get("observed")?)?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let edges = json
        .get("edges")?
        .as_arr()?
        .iter()
        .map(|e| {
            let pair = e.as_arr()?;
            match pair {
                [a, b] => Some((a.as_u64()? as usize, b.as_u64()? as usize)),
                _ => None,
            }
        })
        .collect::<Option<Vec<_>>>()?;
    let pairs = json
        .get("pairs")?
        .as_arr()?
        .iter()
        .map(|p| {
            let triple = p.as_arr()?;
            match triple {
                [a, b, commute] => Some((from_hex(a)?, from_hex(b)?, commute.as_bool()?)),
                _ => None,
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some(BaselineEntry {
        manifest: json.get("manifest")?.as_str()?.to_string(),
        platform: json.get("platform")?.as_str()?.parse().ok()?,
        options: from_hex(json.get("options")?)?,
        graph_digest: from_hex(json.get("graph_digest")?)?,
        resources,
        edges,
        pairs,
        pruned: decode_str_arr(json.get("pruned")?)?,
        verdict: Verdict::from_label(json.get("verdict")?.as_str()?)?,
        detail: json.get("detail")?.as_str()?.to_string(),
        diagnostics: json
            .get("diagnostics")?
            .as_arr()?
            .iter()
            .map(diagnostic_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

/// A content hash of a baseline entry's identity-bearing fields, used by
/// tests to assert that replayed entries are bit-identical to recorded
/// ones.
pub fn entry_fingerprint(entry: &BaselineEntry) -> u64 {
    fnv1a_digest(encode_entry(entry).render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(manifest: &str, digest: u64) -> BaselineEntry {
        BaselineEntry {
            manifest: manifest.to_string(),
            platform: Platform::Ubuntu,
            options: 0xabcd,
            graph_digest: digest,
            resources: vec![ResourceSummary {
                digest: 0x11,
                reads: vec!["/etc".to_string()],
                writes: vec!["/etc/x".to_string()],
                ensured: vec!["/etc".to_string()],
                meta: vec![],
                observed: vec![],
            }],
            edges: vec![(0, 0)],
            pairs: vec![(0x11, 0x22, true)],
            pruned: vec!["/etc/x".to_string()],
            verdict: Verdict::Deterministic,
            detail: String::new(),
            diagnostics: vec![Diagnostic::error("R3001", "race").with_primary(
                rehearsal_diag::Span::new(
                    rehearsal_diag::Pos::new(1, 1),
                    rehearsal_diag::Pos::new(1, 5),
                ),
                "here",
            )],
        }
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join("rehearsal-baseline-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut store = BaselineStore::open(&path).unwrap();
        assert!(store.is_empty());
        store.put(entry("site.pp", 0xfeed));
        store.save().unwrap();

        let reloaded = BaselineStore::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        let hit = reloaded.get("site.pp", 0xabcd).unwrap();
        assert_eq!(hit, &entry("site.pp", 0xfeed));
        assert_eq!(
            entry_fingerprint(hit),
            entry_fingerprint(&entry("site.pp", 0xfeed))
        );
    }

    #[test]
    fn digest_lookup_survives_renames() {
        let mut store = BaselineStore::in_memory();
        store.put(entry("old-name.pp", 0xfeed));
        assert!(store.get("new-name.pp", 0xabcd).is_none());
        let by_digest = store.find_by_digest(0xfeed, 0xabcd).unwrap();
        assert_eq!(by_digest.manifest, "old-name.pp");
        assert!(store.find_by_digest(0xfeed, 0x9999).is_none());
        assert!(store.find_by_digest(0xdead, 0xabcd).is_none());
    }

    #[test]
    fn corrupt_and_stale_lines_are_skipped() {
        let dir = std::env::temp_dir().join("rehearsal-baseline-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.jsonl");
        let mut store = BaselineStore {
            entries: HashMap::new(),
            path: Some(path.clone()),
            dirty: false,
        };
        store.put(entry("good.pp", 1));
        store.save().unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"schema\":99,\"manifest\":\"stale.pp\"}\n");
        std::fs::write(&path, text).unwrap();

        let reloaded = BaselineStore::open(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.get("good.pp", 0xabcd).is_some());
    }
}
