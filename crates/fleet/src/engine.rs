//! The batch-verification engine: per-job pipeline, cache consultation,
//! and the parallel run loop.

use crate::cache::{job_key, CachedVerdict, VerdictCache};
use crate::report::{AnalysisCounters, FleetReport, JobResult, Verdict};
use crate::scheduler::run_work_stealing_with_stats;
use rehearsal_core::{
    aborted_diagnostic, check_determinism, check_idempotence, idempotence_diagnostics,
    race_diagnostic, AnalysisOptions, CancelToken, Rehearsal,
};
use rehearsal_diag::Diagnostic;
use rehearsal_pkgdb::Platform;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// One unit of fleet work: a manifest source targeted at a platform.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Display name (usually the manifest's path).
    pub name: String,
    /// Puppet source text.
    pub source: String,
    /// Target platform.
    pub platform: Platform,
}

/// Configuration for a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Analysis options applied to every job. `analysis.timeout` acts as
    /// the per-job deadline across both pipeline stages.
    pub analysis: AnalysisOptions,
    /// Cancelling this token aborts in-flight analyses and skips the
    /// rest (they report as timeouts).
    pub cancel: Option<CancelToken>,
}

impl FleetOptions {
    /// Sets the worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> FleetOptions {
        self.jobs = jobs;
        self
    }

    /// Sets the per-job deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> FleetOptions {
        self.analysis.timeout = Some(timeout);
        self
    }

    /// Replaces the analysis options wholesale.
    #[must_use]
    pub fn with_analysis(mut self, analysis: AnalysisOptions) -> FleetOptions {
        self.analysis = analysis;
        self
    }

    fn effective_workers(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The batch engine: options plus a verdict cache.
#[derive(Debug, Default)]
pub struct FleetEngine {
    options: FleetOptions,
    cache: VerdictCache,
}

impl FleetEngine {
    /// An engine with an in-memory (non-persistent) cache.
    pub fn new(options: FleetOptions) -> FleetEngine {
        FleetEngine {
            options,
            cache: VerdictCache::in_memory(),
        }
    }

    /// Replaces the verdict cache (e.g. one opened from disk).
    #[must_use]
    pub fn with_cache(mut self, cache: VerdictCache) -> FleetEngine {
        self.cache = cache;
        self
    }

    /// The engine's cache (save it after a run to persist verdicts).
    pub fn cache_mut(&mut self) -> &mut VerdictCache {
        &mut self.cache
    }

    /// Reads manifests from `paths` and runs every `(path, platform)`
    /// combination. Unreadable files become `error` rows rather than
    /// aborting the run.
    pub fn run_paths(&mut self, paths: &[impl AsRef<Path>], platforms: &[Platform]) -> FleetReport {
        let mut jobs = Vec::with_capacity(paths.len() * platforms.len());
        for path in paths {
            let path = path.as_ref();
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()));
            for &platform in platforms {
                jobs.push(match &source {
                    Ok(text) => Ok(FleetJob {
                        name: path.display().to_string(),
                        source: text.clone(),
                        platform,
                    }),
                    Err(msg) => Err((path.display().to_string(), platform, msg.clone())),
                });
            }
        }
        self.run_mixed(jobs)
    }

    /// Runs a batch of jobs, consulting and feeding the verdict cache.
    pub fn run(&mut self, jobs: Vec<FleetJob>) -> FleetReport {
        self.run_mixed(jobs.into_iter().map(Ok).collect())
    }

    /// Jobs plus pre-failed entries (unreadable manifests).
    fn run_mixed(
        &mut self,
        jobs: Vec<Result<FleetJob, (String, Platform, String)>>,
    ) -> FleetReport {
        let start = Instant::now();
        let workers = self.options.effective_workers();

        // Resolve cache hits and pre-failed rows serially; queue the rest.
        // Identical (source, platform, options) jobs dedupe onto one
        // analysis whose result fans out to every requesting slot.
        let mut rows: Vec<Option<JobResult>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(u64, FleetJob, Instant)> = Vec::new();
        let mut key_slots: std::collections::HashMap<u64, Vec<(usize, String, Platform)>> =
            std::collections::HashMap::new();
        for (i, job) in jobs.into_iter().enumerate() {
            match job {
                Err((name, platform, msg)) => rows.push(Some(JobResult {
                    manifest: name,
                    platform,
                    verdict: Verdict::Error,
                    detail: msg,
                    resources: 0,
                    millis: 0,
                    queue_ms: 0,
                    run_ms: 0,
                    phases: Vec::new(),
                    cached: false,
                    counters: AnalysisCounters::default(),
                    diagnostics: Vec::new(),
                })),
                Ok(job) => {
                    let key = job_key(&job.source, job.platform, &self.options.analysis);
                    if let Some(hit) = self.cache.get(key) {
                        rows.push(Some(JobResult {
                            manifest: job.name,
                            platform: job.platform,
                            verdict: hit.verdict.clone(),
                            detail: hit.detail.clone(),
                            resources: hit.resources,
                            millis: 0,
                            queue_ms: 0,
                            run_ms: 0,
                            phases: Vec::new(),
                            cached: true,
                            counters: AnalysisCounters::default(),
                            diagnostics: hit.diagnostics.clone(),
                        }));
                    } else {
                        rows.push(None);
                        let slots = key_slots.entry(key).or_default();
                        if slots.is_empty() {
                            pending.push((key, job.clone(), Instant::now()));
                        }
                        slots.push((i, job.name, job.platform));
                    }
                }
            }
        }

        // Analyze the misses in parallel. When the caller has a trace
        // session installed, each job gets its *own* session (installed
        // thread-locally on the worker, so concurrent jobs never
        // interleave), and the per-job snapshots are folded back into the
        // caller's registry afterwards.
        let analysis = self.options.analysis.clone();
        let cancel = self.options.cancel.clone();
        let trace_jobs = rehearsal_trace::current().is_some();
        let (outcomes, sched) =
            run_work_stealing_with_stats(pending, workers, |_, (key, job, enqueued)| {
                let queue_ms = enqueued.elapsed().as_millis() as u64;
                let session = trace_jobs.then(rehearsal_trace::Session::new);
                let guard = session.as_ref().map(rehearsal_trace::Session::install);
                let job_start = Instant::now();
                let outcome = analyze(&job, &analysis, cancel.as_ref());
                let run_ms = job_start.elapsed().as_millis() as u64;
                drop(guard);
                let (phases, metrics) = match session {
                    Some(s) => {
                        let snap = s.snapshot();
                        let phases = snap
                            .phase_totals()
                            .into_iter()
                            .map(|p| (p.name, p.total_us))
                            .collect();
                        (phases, snap.metrics)
                    }
                    None => (Vec::new(), rehearsal_trace::MetricsSnapshot::default()),
                };
                (
                    key,
                    JobResult {
                        manifest: job.name,
                        platform: job.platform,
                        verdict: outcome.verdict,
                        detail: outcome.detail,
                        resources: outcome.resources,
                        millis: run_ms,
                        queue_ms,
                        run_ms,
                        phases,
                        cached: false,
                        counters: outcome.counters,
                        diagnostics: outcome.diagnostics,
                    },
                    metrics,
                )
            });

        let mut metrics = rehearsal_trace::MetricsSnapshot::default();
        for (key, row, job_metrics) in outcomes {
            metrics.merge(&job_metrics);
            self.cache.put(
                key,
                CachedVerdict {
                    verdict: row.verdict.clone(),
                    detail: row.detail.clone(),
                    resources: row.resources,
                    diagnostics: row.diagnostics.clone(),
                },
            );
            for (slot, name, platform) in key_slots.remove(&key).expect("pending key has slots") {
                rows[slot] = Some(JobResult {
                    manifest: name,
                    platform,
                    ..row.clone()
                });
            }
        }

        let rows: Vec<JobResult> = rows.into_iter().map(|r| r.expect("row filled")).collect();

        // Fleet-level metrics ride the same registry namespace as the
        // per-job ones, so one Prometheus scrape sees the whole picture.
        let fleet_reg = rehearsal_trace::Registry::new();
        let cached = rows.iter().filter(|r| r.cached).count();
        fleet_reg.counter_add("fleet.jobs", rows.len() as u64);
        fleet_reg.counter_add("fleet.cache_hits", cached as u64);
        fleet_reg.counter_add("fleet.steals", sched.steals);
        fleet_reg.gauge_max("fleet.queue_depth_max", sched.max_queue_depth as i64);
        fleet_reg.gauge_max("fleet.workers", workers as i64);
        for row in rows.iter().filter(|r| !r.cached && !r.phases.is_empty()) {
            fleet_reg.observe("fleet.job_queue_ms", row.queue_ms);
            fleet_reg.observe("fleet.job_run_ms", row.run_ms);
        }
        let mut fleet_metrics = fleet_reg.snapshot();
        fleet_metrics.merge(&metrics);
        // Make the run visible to the caller's own session too (e.g. the
        // CLI's `--trace` export).
        if let Some(session) = rehearsal_trace::current() {
            session.metrics().merge_snapshot(&fleet_metrics);
        }

        FleetReport {
            rows,
            wall_millis: start.elapsed().as_millis() as u64,
            jobs: workers,
            steals: sched.steals,
            max_queue_depth: sched.max_queue_depth,
            metrics: fleet_metrics,
        }
    }
}

/// What one job's analysis produced.
struct AnalyzeOutcome {
    verdict: Verdict,
    detail: String,
    resources: usize,
    counters: AnalysisCounters,
    /// Source-anchored findings (race reports, pipeline errors, modeling
    /// warnings) — the machine-readable stream behind `--annotations`.
    diagnostics: Vec<Diagnostic>,
}

impl AnalyzeOutcome {
    fn new(verdict: Verdict, detail: impl Into<String>) -> AnalyzeOutcome {
        AnalyzeOutcome {
            verdict,
            detail: detail.into(),
            resources: 0,
            counters: AnalysisCounters::default(),
            diagnostics: Vec::new(),
        }
    }
}

/// Runs the full determinism + idempotence pipeline for one job.
fn analyze(
    job: &FleetJob,
    analysis: &AnalysisOptions,
    cancel: Option<&CancelToken>,
) -> AnalyzeOutcome {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return AnalyzeOutcome::new(Verdict::Timeout, "cancelled before start");
    }
    let mut options = analysis.clone();
    if let Some(token) = cancel {
        options = options.with_cancel(token.clone());
    }
    let started = Instant::now();
    let tool = Rehearsal::new(job.platform).with_options(options.clone());
    let (graph, mut diagnostics) = match tool.lower_source(&job.source) {
        Ok(ok) => ok,
        Err(e) => {
            let mut out = AnalyzeOutcome::new(Verdict::Error, e.to_string());
            out.diagnostics = e.into_diagnostics();
            return out;
        }
    };
    let resources = graph.exprs.len();

    let determinism = match check_determinism(&graph, &options) {
        Ok(report) => report,
        Err(aborted) => {
            let mut out = AnalyzeOutcome::new(Verdict::Timeout, aborted.reason.clone());
            out.resources = resources;
            out.diagnostics = vec![aborted_diagnostic(&aborted)];
            return out;
        }
    };
    let counters = AnalysisCounters::from(&determinism.stats());
    if let rehearsal_core::DeterminismReport::NonDeterministic(cex, _) = &determinism {
        let detail = format!(
            "order A {}, order B {}",
            outcome_word(cex.outcome_a.is_ok()),
            outcome_word(cex.outcome_b.is_ok()),
        );
        diagnostics.push(race_diagnostic(cex, &graph));
        return AnalyzeOutcome {
            verdict: Verdict::Nondeterministic,
            detail,
            resources,
            counters,
            diagnostics,
        };
    }

    // The idempotence stage runs under whatever deadline remains.
    if let Some(total) = options.timeout {
        options.timeout = Some(total.saturating_sub(started.elapsed()));
    }
    match check_idempotence(&graph, &options) {
        Ok(report) if report.is_idempotent() => AnalyzeOutcome {
            verdict: Verdict::Deterministic,
            detail: String::new(),
            resources,
            counters,
            diagnostics,
        },
        Ok(report) => {
            diagnostics.extend(idempotence_diagnostics(&report, &graph));
            AnalyzeOutcome {
                verdict: Verdict::Nonidempotent,
                detail: "applying twice differs from applying once".to_string(),
                resources,
                counters,
                diagnostics,
            }
        }
        Err(aborted) => {
            diagnostics.push(aborted_diagnostic(&aborted));
            AnalyzeOutcome {
                verdict: Verdict::Timeout,
                detail: aborted.reason,
                resources,
                counters,
                diagnostics,
            }
        }
    }
}

fn outcome_word(ok: bool) -> &'static str {
    if ok {
        "succeeds"
    } else {
        "errors"
    }
}

/// Convenience shorthand: discover `.pp` files under `root` and verify
/// them on one platform with default options.
///
/// # Errors
///
/// I/O errors from discovery.
pub fn verify_directory(root: impl AsRef<Path>, platform: Platform) -> io::Result<FleetReport> {
    let paths = crate::discover::discover_manifests(root)?;
    Ok(FleetEngine::new(FleetOptions::default()).run_paths(&paths, &[platform]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, source: &str) -> FleetJob {
        FleetJob {
            name: name.to_string(),
            source: source.to_string(),
            platform: Platform::Ubuntu,
        }
    }

    #[test]
    fn verdicts_across_the_spectrum() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let report = engine.run(vec![
            job("ok.pp", "file { '/etc/motd': content => 'hi' }"),
            job(
                "race.pp",
                "package { 'vim': ensure => present }\n\
                 file { '/home/carol/.vimrc': content => 'syntax on' }\n\
                 user { 'carol': ensure => present, managehome => true }",
            ),
            job("broken.pp", "exec { 'apt-get update': }"),
            job(
                "twice.pp",
                "file { '/dst': source => '/src' }\n\
                 file { '/src': ensure => absent }\n\
                 File['/dst'] -> File['/src']",
            ),
        ]);
        let verdicts: Vec<&Verdict> = report.rows.iter().map(|r| &r.verdict).collect();
        assert_eq!(
            verdicts,
            [
                &Verdict::Deterministic,
                &Verdict::Nondeterministic,
                &Verdict::Error,
                &Verdict::Nonidempotent,
            ]
        );
        let c = report.counts();
        assert_eq!(c.total(), 4);
        assert_eq!(c.failures(), 3);
        assert_eq!(c.cached, 0);
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let jobs = vec![
            job("a.pp", "file { '/etc/motd': content => 'a' }"),
            job("b.pp", "file { '/etc/motd2': content => 'b' }"),
        ];
        let first = engine.run(jobs.clone());
        assert_eq!(first.counts().cached, 0);
        let second = engine.run(jobs);
        assert_eq!(second.counts().cached, 2);
        assert_eq!(second.counts().deterministic, 2);
        assert!(second.rows.iter().all(|r| r.cached && r.millis == 0));
    }

    #[test]
    fn duplicate_jobs_are_analyzed_once() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let report = engine.run(vec![
            job("copy-a.pp", "file { '/etc/motd': content => 'same' }"),
            job("copy-b.pp", "file { '/etc/motd': content => 'same' }"),
        ]);
        // Both rows are filled with their own names, from one analysis.
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].manifest, "copy-a.pp");
        assert_eq!(report.rows[1].manifest, "copy-b.pp");
        assert_eq!(report.rows[0].verdict, Verdict::Deterministic);
        assert_eq!(report.rows[1].verdict, Verdict::Deterministic);
        assert_eq!(engine.cache_mut().len(), 1, "one key for both jobs");
    }

    #[test]
    fn source_edit_misses_the_cache() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'a' }")]);
        let report = engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'b' }")]);
        assert_eq!(report.counts().cached, 0);
    }

    #[test]
    fn cancelled_token_times_jobs_out() {
        let token = CancelToken::new();
        token.cancel();
        let mut options = FleetOptions::default().with_jobs(1);
        options.cancel = Some(token);
        let mut engine = FleetEngine::new(options);
        let report = engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'a' }")]);
        assert_eq!(report.rows[0].verdict, Verdict::Timeout);
        // Timeouts are not cached, so a healthy rerun re-analyzes.
        assert_eq!(engine.cache_mut().len(), 0);
    }

    #[test]
    fn unreadable_path_becomes_error_row() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        let report = engine.run_paths(&["/no/such/manifest.pp"], &[Platform::Ubuntu]);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Error);
        assert!(report.rows[0].detail.contains("cannot read"));
    }
}
