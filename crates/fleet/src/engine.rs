//! The batch-verification engine: per-job pipeline, semantic cache
//! consultation, baseline-driven differential reuse, and the parallel
//! run loop.
//!
//! Since cache schema 5 the engine lowers every readable job *serially*
//! (lowering is microseconds; analysis is the expensive part) so it can
//! key the verdict cache on the canonical digest of the lowered graph
//! ([`graph_key`]) instead of raw source bytes. A formatting, comment,
//! reorder, or rename edit therefore hits warm. When a [`BaselineStore`]
//! is attached (`--baseline FILE`), a digest match replays the recorded
//! verdict outright, and a *mismatch* computes the edit's dirty cone and
//! seeds a [`CommuteOracle`] with the baseline's pair verdicts for the
//! clean remainder — re-verification in time proportional to the diff,
//! with verdicts bit-identical to a cold run by construction (the oracle
//! only memoizes the pure structural `commutes` function).

use crate::baseline::{BaselineEntry, BaselineStore, ResourceSummary};
use crate::cache::{graph_key, job_key, options_fingerprint, CachedVerdict, VerdictCache};
use crate::report::{AnalysisCounters, FleetReport, JobResult, ReuseCounts, Verdict};
use crate::scheduler::run_work_stealing_with_stats;
use crate::state::StateDir;
use rehearsal_core::{
    aborted_diagnostic, check_determinism_with_oracle, check_idempotence, dirty_cone, expr_digest,
    footprint, graph_digest, idempotence_diagnostics, race_diagnostic, AnalysisOptions,
    CancelToken, CommuteOracle, Footprint, FsGraph, Rehearsal,
};
use rehearsal_diag::Diagnostic;
use rehearsal_fs::FsPath;
use rehearsal_pkgdb::Platform;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of fleet work: a manifest source targeted at a platform.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Display name (usually the manifest's path).
    pub name: String,
    /// Puppet source text.
    pub source: String,
    /// Target platform.
    pub platform: Platform,
}

/// Configuration for a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Explorer threads *per manifest job*; `0` means "divide what's
    /// left": the run gives each job `max(1, cores / jobs)` explorer
    /// threads (see [`resolve_core_split`]), so `--jobs`/`--threads`
    /// never oversubscribe the machine between them.
    pub threads: usize,
    /// Analysis options applied to every job. `analysis.timeout` acts as
    /// the per-job deadline across both pipeline stages.
    pub analysis: AnalysisOptions,
    /// Cancelling this token aborts in-flight analyses and skips the
    /// rest (they report as timeouts).
    pub cancel: Option<CancelToken>,
    /// Run the solver-free lint pass over every readable manifest and
    /// attach its `R2xxx` findings to the job's row diagnostics (they
    /// flow into `--annotations` and the JSON rows, and never affect
    /// verdicts or the verdict cache).
    pub lint: bool,
}

impl FleetOptions {
    /// Sets the worker count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> FleetOptions {
        self.jobs = jobs;
        self
    }

    /// Sets the per-job explorer thread count (`0` = auto-split).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> FleetOptions {
        self.threads = threads;
        self
    }

    /// Sets the per-job deadline.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> FleetOptions {
        self.analysis.timeout = Some(timeout);
        self
    }

    /// Replaces the analysis options wholesale.
    #[must_use]
    pub fn with_analysis(mut self, analysis: AnalysisOptions) -> FleetOptions {
        self.analysis = analysis;
        self
    }

    /// Enables the lint pass on every job (see [`FleetOptions::lint`]).
    #[must_use]
    pub fn with_lint(mut self, lint: bool) -> FleetOptions {
        self.lint = lint;
        self
    }

    /// The worker count a run will actually use: `jobs`, or one per
    /// available CPU when `jobs` is `0` (the default).
    pub fn effective_workers(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Divides `cores` between manifest-level jobs and per-manifest explorer
/// threads so the two never oversubscribe the machine multiplicatively.
/// `0` means "auto" for either request:
///
/// * both auto — one job per manifest up to the core count, remaining
///   cores become explorer threads (`manifests ≥ cores` therefore
///   reproduces the historical `jobs = cores, threads = 1` default);
/// * `--jobs J` alone — the leftover `cores / J` become threads;
/// * `--threads T` alone — the leftover `cores / T` become jobs;
/// * both given — honored verbatim unless `J × T > cores`, in which case
///   the thread request is scaled down to `max(1, cores / J)` (jobs win:
///   cross-manifest parallelism has no shared state to contend on).
pub fn resolve_core_split(
    cores: usize,
    jobs_req: usize,
    threads_req: usize,
    manifests: usize,
) -> (usize, usize) {
    let cores = cores.max(1);
    match (jobs_req, threads_req) {
        (0, 0) => {
            let jobs = cores.min(manifests.max(1));
            (jobs, (cores / jobs).max(1))
        }
        (j, 0) => (j, (cores / j).max(1)),
        (0, t) => ((cores / t).max(1), t),
        (j, t) if j.saturating_mul(t) > cores => (j, (cores / j).max(1)),
        (j, t) => (j, t),
    }
}

/// The batch engine: options plus a shared [`StateDir`] holding the
/// verdict cache and (optionally) the differential-verification
/// baseline. Any number of engines — CLI runs, daemon request workers —
/// can share one `Arc<StateDir>`; the handle's locks keep their cache
/// and baseline traffic from interleaving, and flushing happens once,
/// through the handle, instead of per run.
#[derive(Debug, Default)]
pub struct FleetEngine {
    options: FleetOptions,
    state: Arc<StateDir>,
}

impl FleetEngine {
    /// An engine with a fresh in-memory (non-persistent) state handle.
    pub fn new(options: FleetOptions) -> FleetEngine {
        FleetEngine {
            options,
            state: Arc::new(StateDir::in_memory()),
        }
    }

    /// Shares an existing state handle (the open-once `--cache` /
    /// `--baseline` / `--state-dir` stores) with this engine.
    #[must_use]
    pub fn with_state(mut self, state: Arc<StateDir>) -> FleetEngine {
        self.state = state;
        self
    }

    /// Replaces the verdict cache on this engine's state handle (e.g.
    /// one opened from disk).
    #[must_use]
    pub fn with_cache(self, cache: VerdictCache) -> FleetEngine {
        self.state.set_cache(cache);
        self
    }

    /// Attaches a baseline store to this engine's state handle. Runs
    /// will consult it for differential reuse and record fresh entries
    /// into it (flush the state to persist them).
    #[must_use]
    pub fn with_baseline(self, baseline: BaselineStore) -> FleetEngine {
        self.state.set_baseline(baseline);
        self
    }

    /// The engine's shared state handle (cache + baseline). Flush it
    /// after a run to persist verdicts and recorded entries.
    pub fn state(&self) -> &Arc<StateDir> {
        &self.state
    }

    /// Reads manifests from `paths` and runs every `(path, platform)`
    /// combination. Unreadable files become `error` rows rather than
    /// aborting the run.
    pub fn run_paths(&mut self, paths: &[impl AsRef<Path>], platforms: &[Platform]) -> FleetReport {
        let mut jobs = Vec::with_capacity(paths.len() * platforms.len());
        for path in paths {
            let path = path.as_ref();
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()));
            for &platform in platforms {
                jobs.push(match &source {
                    Ok(text) => Ok(FleetJob {
                        name: path.display().to_string(),
                        source: text.clone(),
                        platform,
                    }),
                    Err(msg) => Err((path.display().to_string(), platform, msg.clone())),
                });
            }
        }
        self.run_mixed(jobs)
    }

    /// Runs a batch of jobs, consulting and feeding the verdict cache
    /// (and the baseline, when one is attached).
    pub fn run(&mut self, jobs: Vec<FleetJob>) -> FleetReport {
        self.run_mixed(jobs.into_iter().map(Ok).collect())
    }

    /// Jobs plus pre-failed entries (unreadable manifests).
    fn run_mixed(
        &mut self,
        jobs: Vec<Result<FleetJob, (String, Platform, String)>>,
    ) -> FleetReport {
        let start = Instant::now();
        let analysis = self.options.analysis.clone();
        let cancel = self.options.cancel.clone();
        let trace_jobs = rehearsal_trace::current().is_some();

        // Lower every readable job serially (microseconds each) so cache
        // and baseline lookups can use the semantic graph key; resolve
        // hits, replays, and pre-failed rows in place; queue the rest.
        // Jobs that lower to the same graph under the same options dedupe
        // onto one analysis whose result fans out to every slot.
        let mut rows: Vec<Option<JobResult>> = Vec::with_capacity(jobs.len());
        let mut lint_by_slot: HashMap<usize, Vec<Diagnostic>> = HashMap::new();
        let mut pending: Vec<PendingJob> = Vec::new();
        let mut key_slots: HashMap<u64, Vec<(usize, String, Platform)>> = HashMap::new();
        let mut serial_metrics = rehearsal_trace::MetricsSnapshot::default();
        let mut graph_hits: u64 = 0;
        let mut baseline_hits: u64 = 0;
        for (i, job) in jobs.into_iter().enumerate() {
            let job = match job {
                Err((name, platform, msg)) => {
                    rows.push(Some(error_row(name, platform, msg, Vec::new())));
                    continue;
                }
                Ok(job) => job,
            };
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                let mut row = error_row(
                    job.name,
                    job.platform,
                    "cancelled before start".to_string(),
                    Vec::new(),
                );
                row.verdict = Verdict::Timeout;
                rows.push(Some(row));
                continue;
            }
            if self.options.lint {
                // Lint is source-derived and solver-free: it runs even for
                // rows the verdict cache answers, and its findings stay
                // out of the cache so cached verdicts are never polluted.
                let lint_opts = rehearsal_lint::LintOptions {
                    platform: job.platform,
                    ..rehearsal_lint::LintOptions::default()
                };
                let lint = rehearsal_lint::lint_source(&job.name, &job.source, &lint_opts);
                lint_by_slot.insert(
                    i,
                    lint.findings
                        .into_iter()
                        .filter(|d| d.code.starts_with("R2"))
                        .collect(),
                );
            }
            // Sources that previously failed to lower are cached under
            // the raw-source key; check it before re-parsing.
            let src_key = job_key(&job.source, job.platform, &analysis);
            if let Some(hit) = self.state.cache_get(src_key) {
                rows.push(Some(cached_row(job.name, job.platform, &hit, None)));
                continue;
            }
            let lower_start = Instant::now();
            let mut lower_opts = analysis.clone();
            if let Some(token) = &cancel {
                lower_opts = lower_opts.with_cancel(token.clone());
            }
            let (lowered, lower_phases, lower_metrics) = traced(trace_jobs, || {
                Rehearsal::new(job.platform)
                    .with_options(lower_opts)
                    .lower_source(&job.source)
            });
            let lower_ms = lower_start.elapsed().as_millis() as u64;
            serial_metrics.merge(&lower_metrics);
            let (graph, diagnostics) = match lowered {
                Ok(ok) => ok,
                Err(e) => {
                    let mut row =
                        error_row(job.name, job.platform, e.to_string(), e.into_diagnostics());
                    row.millis = lower_ms;
                    row.run_ms = lower_ms;
                    row.phases = lower_phases;
                    self.state.cache_put(src_key, verdict_of(&row));
                    rows.push(Some(row));
                    continue;
                }
            };

            let digest = graph_digest(&graph);
            let key = graph_key(digest, job.platform, &analysis);
            let fp = options_fingerprint(job.platform, &analysis);
            if let Some(hit) = self.state.cache_get(key) {
                // Semantic cache hit: same lowered graph, platform, and
                // options — formatting/comment/reorder/rename edits land
                // here.
                graph_hits += 1;
                let reuse = ReuseCounts {
                    resources_clean: hit.resources,
                    resources_dirty: 0,
                    pairs_reused: 0,
                };
                let mut row = cached_row(job.name.clone(), job.platform, &hit, Some(reuse));
                row.phases = lower_phases;
                // Keep the baseline fresh for manifests it has never
                // seen (pair verdicts are unknown on a pure cache hit,
                // so never overwrite a richer recorded entry).
                if self.state.has_baseline() && self.state.baseline_get(&job.name, fp).is_none() {
                    self.state.baseline_put(baseline_entry(
                        &graph,
                        &analysis,
                        job.name.clone(),
                        job.platform,
                        fp,
                        digest,
                        Vec::new(),
                        &hit.verdict,
                        &hit.detail,
                        &hit.diagnostics,
                    ));
                }
                rows.push(Some(row));
                continue;
            }
            let replay = self.state.baseline_replay(&job.name, fp, digest);
            if let Some(entry) = replay {
                // Baseline digest match: the manifest lowers to exactly
                // the graph the baseline analyzed — replay its verdict
                // with zero re-analysis.
                baseline_hits += 1;
                let n = graph.exprs.len();
                let mut row = JobResult {
                    manifest: job.name.clone(),
                    platform: job.platform,
                    verdict: entry.verdict.clone(),
                    detail: entry.detail.clone(),
                    resources: n,
                    millis: 0,
                    queue_ms: 0,
                    run_ms: 0,
                    phases: lower_phases,
                    cached: true,
                    counters: AnalysisCounters::default(),
                    diagnostics: entry.diagnostics.clone(),
                    reuse: Some(ReuseCounts {
                        resources_clean: n,
                        resources_dirty: 0,
                        pairs_reused: entry.pairs.len() as u64,
                    }),
                };
                row.resources = n;
                self.state.cache_put(key, verdict_of(&row));
                if entry.manifest != job.name {
                    // A renamed (or moved) manifest found by digest:
                    // re-key the entry so the next lookup is direct.
                    let mut renamed = entry;
                    renamed.manifest = job.name.clone();
                    self.state.baseline_put(renamed);
                }
                rows.push(Some(row));
                continue;
            }

            rows.push(None);
            let slots = key_slots.entry(key).or_default();
            if slots.is_empty() {
                // A baseline *name* match with a different digest is an
                // edit: slice it. No baseline entry at all still gets a
                // plan (an empty oracle) so the run records pairs for
                // the next baseline.
                let plan = self.state.has_baseline().then(|| {
                    build_reuse_plan(self.state.baseline_get(&job.name, fp).as_ref(), &graph)
                });
                pending.push(PendingJob {
                    key,
                    name: job.name.clone(),
                    platform: job.platform,
                    graph,
                    diagnostics,
                    graph_digest: digest,
                    options_fp: fp,
                    plan,
                    lower_phases,
                    enqueued: Instant::now(),
                });
            }
            slots.push((i, job.name, job.platform));
        }

        // Split the machine between manifest jobs and per-manifest
        // explorer threads. `threads` rides into every job's
        // `AnalysisOptions` — it can never change a verdict, so it stays
        // out of the cache fingerprint (set after lowering on purpose).
        let (workers, threads) = resolve_core_split(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            self.options.jobs,
            self.options.threads,
            pending.len(),
        );
        let analysis = {
            let mut a = analysis;
            a.threads = threads;
            a
        };

        // Analyze the misses in parallel. When the caller has a trace
        // session installed, each job gets its *own* session (installed
        // thread-locally on the worker, so concurrent jobs never
        // interleave), and the per-job snapshots are folded back into the
        // caller's registry afterwards.
        let (outcomes, sched) = run_work_stealing_with_stats(pending, workers, |_, pj| {
            let PendingJob {
                key,
                name,
                platform,
                graph,
                diagnostics,
                graph_digest,
                options_fp,
                plan,
                lower_phases,
                enqueued,
            } = pj;
            let queue_ms = enqueued.elapsed().as_millis() as u64;
            let job_start = Instant::now();
            let (outcome, phases, metrics) = traced(trace_jobs, || {
                analyze_lowered(
                    &graph,
                    diagnostics,
                    &analysis,
                    cancel.as_ref(),
                    plan.as_ref().map(|p| &p.oracle),
                )
            });
            let run_ms = job_start.elapsed().as_millis() as u64;
            let mut all_phases = lower_phases;
            all_phases.extend(phases);
            let reuse = plan.as_ref().map(|p| ReuseCounts {
                resources_clean: p.resources_clean,
                resources_dirty: p.resources_dirty,
                pairs_reused: p.oracle.pairs_reused(),
            });
            // Timeouts are not recorded: a later healthy run must not
            // replay an aborted verdict.
            let update = plan
                .filter(|_| !matches!(outcome.verdict, Verdict::Timeout))
                .map(|p| {
                    baseline_entry(
                        &graph,
                        &analysis,
                        String::new(), // filled in per fan-out slot
                        platform,
                        options_fp,
                        graph_digest,
                        p.oracle.export(),
                        &outcome.verdict,
                        &outcome.detail,
                        &outcome.diagnostics,
                    )
                });
            (
                key,
                JobResult {
                    manifest: name,
                    platform,
                    verdict: outcome.verdict,
                    detail: outcome.detail,
                    resources: outcome.resources,
                    millis: run_ms,
                    queue_ms,
                    run_ms,
                    phases: all_phases,
                    cached: false,
                    counters: outcome.counters,
                    diagnostics: outcome.diagnostics,
                    reuse,
                },
                metrics,
                update,
            )
        });

        let mut metrics = serial_metrics;
        for (key, row, job_metrics, update) in outcomes {
            metrics.merge(&job_metrics);
            self.state.cache_put(key, verdict_of(&row));
            for (slot, name, platform) in key_slots.remove(&key).expect("pending key has slots") {
                if let Some(template) = update.as_ref() {
                    let mut entry = template.clone();
                    entry.manifest = name.clone();
                    entry.platform = platform;
                    self.state.baseline_put(entry);
                }
                rows[slot] = Some(JobResult {
                    manifest: name,
                    platform,
                    ..row.clone()
                });
            }
        }

        let mut rows: Vec<JobResult> = rows.into_iter().map(|r| r.expect("row filled")).collect();
        for (slot, findings) in lint_by_slot {
            rows[slot].diagnostics.extend(findings);
        }
        let rows = rows;

        // Fleet-level metrics ride the same registry namespace as the
        // per-job ones, so one Prometheus scrape sees the whole picture.
        let fleet_reg = rehearsal_trace::Registry::new();
        let cached = rows.iter().filter(|r| r.cached).count();
        fleet_reg.counter_add("fleet.jobs", rows.len() as u64);
        fleet_reg.counter_add("fleet.cache_hits", cached as u64);
        fleet_reg.counter_add("fleet.steals", sched.steals);
        fleet_reg.gauge_max("fleet.queue_depth_max", sched.max_queue_depth as i64);
        fleet_reg.gauge_max("fleet.workers", workers as i64);
        fleet_reg.gauge_max("fleet.threads_per_job", threads as i64);
        for row in rows.iter().filter(|r| !r.cached && !r.phases.is_empty()) {
            fleet_reg.observe("fleet.job_queue_ms", row.queue_ms);
            fleet_reg.observe("fleet.job_run_ms", row.run_ms);
        }
        // The differential-verification scorecard: how much of this run
        // was answered without re-analysis.
        let (mut clean, mut dirty, mut pairs) = (0u64, 0u64, 0u64);
        for reuse in rows.iter().filter_map(|r| r.reuse) {
            clean += reuse.resources_clean as u64;
            dirty += reuse.resources_dirty as u64;
            pairs += reuse.pairs_reused;
        }
        fleet_reg.counter_add("incremental.graph_hits", graph_hits);
        fleet_reg.counter_add("incremental.baseline_hits", baseline_hits);
        fleet_reg.counter_add("incremental.resources_clean", clean);
        fleet_reg.counter_add("incremental.resources_dirty", dirty);
        fleet_reg.counter_add("incremental.pairs_reused", pairs);
        let mut fleet_metrics = fleet_reg.snapshot();
        fleet_metrics.merge(&metrics);
        // Make the run visible to the caller's own session too (e.g. the
        // CLI's `--trace` export).
        if let Some(session) = rehearsal_trace::current() {
            session.metrics().merge_snapshot(&fleet_metrics);
        }

        FleetReport {
            rows,
            wall_millis: start.elapsed().as_millis() as u64,
            jobs: workers,
            threads,
            steals: sched.steals,
            max_queue_depth: sched.max_queue_depth,
            metrics: fleet_metrics,
        }
    }
}

/// A lowered job queued for parallel analysis.
struct PendingJob {
    key: u64,
    name: String,
    platform: Platform,
    graph: FsGraph,
    diagnostics: Vec<Diagnostic>,
    graph_digest: u64,
    options_fp: u64,
    plan: Option<ReusePlan>,
    lower_phases: Vec<(String, u64)>,
    enqueued: Instant,
}

/// The differential plan for one edited manifest: which resources are
/// clean vs dirty, and the oracle seeded with the baseline's pair
/// verdicts for the clean remainder.
struct ReusePlan {
    oracle: CommuteOracle,
    resources_clean: usize,
    resources_dirty: usize,
}

/// Runs `f` under a fresh per-job trace session (when tracing is on) and
/// returns its result plus the session's phase totals and metrics.
fn traced<R>(
    trace_jobs: bool,
    f: impl FnOnce() -> R,
) -> (R, Vec<(String, u64)>, rehearsal_trace::MetricsSnapshot) {
    let session = trace_jobs.then(rehearsal_trace::Session::new);
    let guard = session.as_ref().map(rehearsal_trace::Session::install);
    let out = f();
    drop(guard);
    match session {
        Some(s) => {
            let snap = s.snapshot();
            let phases = snap
                .phase_totals()
                .into_iter()
                .map(|p| (p.name, p.total_us))
                .collect();
            (out, phases, snap.metrics)
        }
        None => (out, Vec::new(), rehearsal_trace::MetricsSnapshot::default()),
    }
}

fn error_row(
    manifest: String,
    platform: Platform,
    detail: String,
    diagnostics: Vec<Diagnostic>,
) -> JobResult {
    JobResult {
        manifest,
        platform,
        verdict: Verdict::Error,
        detail,
        resources: 0,
        millis: 0,
        queue_ms: 0,
        run_ms: 0,
        phases: Vec::new(),
        cached: false,
        counters: AnalysisCounters::default(),
        diagnostics,
        reuse: None,
    }
}

fn cached_row(
    manifest: String,
    platform: Platform,
    hit: &CachedVerdict,
    reuse: Option<ReuseCounts>,
) -> JobResult {
    JobResult {
        manifest,
        platform,
        verdict: hit.verdict.clone(),
        detail: hit.detail.clone(),
        resources: hit.resources,
        millis: 0,
        queue_ms: 0,
        run_ms: 0,
        phases: Vec::new(),
        cached: true,
        counters: AnalysisCounters::default(),
        diagnostics: hit.diagnostics.clone(),
        reuse,
    }
}

fn verdict_of(row: &JobResult) -> CachedVerdict {
    CachedVerdict {
        verdict: row.verdict.clone(),
        detail: row.detail.clone(),
        resources: row.resources,
        diagnostics: row.diagnostics.clone(),
    }
}

/// Builds the baseline entry for an analyzed graph: per-resource
/// footprint summaries, edges, pair verdicts, and (when pruning is on)
/// the pruning decisions — everything a later differential run consults.
#[allow(clippy::too_many_arguments)]
fn baseline_entry(
    graph: &FsGraph,
    analysis: &AnalysisOptions,
    manifest: String,
    platform: Platform,
    options_fp: u64,
    graph_digest: u64,
    pairs: Vec<(u64, u64, bool)>,
    verdict: &Verdict,
    detail: &str,
    diagnostics: &[Diagnostic],
) -> BaselineEntry {
    fn strings(paths: &BTreeSet<FsPath>) -> Vec<String> {
        paths.iter().map(|p| p.to_string()).collect()
    }
    let resources = graph
        .exprs
        .iter()
        .map(|&e| {
            let f = footprint(e);
            ResourceSummary {
                digest: f.digest,
                reads: strings(&f.reads),
                writes: strings(&f.writes),
                ensured: strings(&f.ensured),
                meta: strings(&f.meta),
                observed: strings(&f.observed_dirs),
            }
        })
        .collect();
    // Pruning decisions are recorded for inspection but *revalidated*
    // (recomputed — it is linear-time) on replay, never trusted.
    let pruned = if analysis.pruning {
        rehearsal_core::prune::prune_graph(graph)
            .1
            .iter()
            .map(|p| p.to_string())
            .collect()
    } else {
        Vec::new()
    };
    BaselineEntry {
        manifest,
        platform,
        options: options_fp,
        graph_digest,
        resources,
        edges: graph.edges.iter().copied().collect(),
        pairs,
        pruned,
        verdict: verdict.clone(),
        detail: detail.to_string(),
        diagnostics: diagnostics.to_vec(),
    }
}

/// Computes the differential plan for an edited manifest against its
/// baseline entry (or a cold plan when there is none): multiset-match
/// resource digests to find the edit's seeds and removals, take the
/// [`dirty_cone`], and seed the oracle with baseline pair verdicts whose
/// endpoints are both clean. Any ambiguity (an unparseable persisted
/// footprint) falls back to a fully dirty graph — everything re-analyzed
/// fresh, which is always sound.
fn build_reuse_plan(entry: Option<&BaselineEntry>, graph: &FsGraph) -> ReusePlan {
    let n = graph.exprs.len();
    let cold = || ReusePlan {
        oracle: CommuteOracle::new(),
        resources_clean: 0,
        resources_dirty: n,
    };
    let Some(entry) = entry else {
        return cold();
    };
    let digests: Vec<u64> = graph.exprs.iter().map(|&e| expr_digest(e)).collect();
    // Multiset-match current resources against the baseline's summaries;
    // unmatched current resources are the edit's seeds.
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for r in &entry.resources {
        *counts.entry(r.digest).or_insert(0) += 1;
    }
    let mut seed: BTreeSet<usize> = BTreeSet::new();
    for (i, d) in digests.iter().enumerate() {
        match counts.get_mut(d) {
            Some(c) if *c > 0 => *c -= 1,
            _ => {
                seed.insert(i);
            }
        }
    }
    // Summaries left unmatched describe resources the edit removed;
    // their serialized footprints dirty whatever they may overlap.
    let mut removed: Vec<Footprint> = Vec::new();
    for r in &entry.resources {
        let Some(c) = counts.get_mut(&r.digest) else {
            continue;
        };
        if *c == 0 {
            continue;
        }
        *c -= 1;
        match parse_summary(r) {
            Some(f) => removed.push(f),
            None => return cold(),
        }
    }
    let cone = dirty_cone(graph, &seed, &removed);
    let oracle = CommuteOracle::new();
    let clean: HashSet<u64> = (0..n)
        .filter(|i| !cone.contains(i))
        .map(|i| digests[i])
        .collect();
    for &(a, b, bit) in &entry.pairs {
        if clean.contains(&a) && clean.contains(&b) {
            oracle.seed(a, b, bit);
        }
    }
    ReusePlan {
        oracle,
        resources_clean: n - cone.len(),
        resources_dirty: cone.len(),
    }
}

/// Reparses a persisted footprint summary; `None` means ambiguity (the
/// caller falls back to a fully dirty graph).
fn parse_summary(r: &ResourceSummary) -> Option<Footprint> {
    fn set(paths: &[String]) -> Option<BTreeSet<FsPath>> {
        paths.iter().map(|s| FsPath::parse(s).ok()).collect()
    }
    Some(Footprint {
        digest: r.digest,
        reads: set(&r.reads)?,
        writes: set(&r.writes)?,
        ensured: set(&r.ensured)?,
        meta: set(&r.meta)?,
        observed_dirs: set(&r.observed)?,
    })
}

/// What one job's analysis produced.
struct AnalyzeOutcome {
    verdict: Verdict,
    detail: String,
    resources: usize,
    counters: AnalysisCounters,
    /// Source-anchored findings (race reports, pipeline errors, modeling
    /// warnings) — the machine-readable stream behind `--annotations`.
    diagnostics: Vec<Diagnostic>,
}

impl AnalyzeOutcome {
    fn new(verdict: Verdict, detail: impl Into<String>) -> AnalyzeOutcome {
        AnalyzeOutcome {
            verdict,
            detail: detail.into(),
            resources: 0,
            counters: AnalysisCounters::default(),
            diagnostics: Vec::new(),
        }
    }
}

/// Runs the determinism + idempotence pipeline on an already-lowered
/// graph, routing pairwise commutativity through `oracle` when one is
/// supplied.
fn analyze_lowered(
    graph: &FsGraph,
    mut diagnostics: Vec<Diagnostic>,
    analysis: &AnalysisOptions,
    cancel: Option<&CancelToken>,
    oracle: Option<&CommuteOracle>,
) -> AnalyzeOutcome {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return AnalyzeOutcome::new(Verdict::Timeout, "cancelled before start");
    }
    let mut options = analysis.clone();
    if let Some(token) = cancel {
        options = options.with_cancel(token.clone());
    }
    let started = Instant::now();
    let resources = graph.exprs.len();

    let determinism = match check_determinism_with_oracle(graph, &options, oracle) {
        Ok(report) => report,
        Err(aborted) => {
            let mut out = AnalyzeOutcome::new(Verdict::Timeout, aborted.reason.clone());
            out.resources = resources;
            out.diagnostics = vec![aborted_diagnostic(&aborted)];
            return out;
        }
    };
    let counters = AnalysisCounters::from(&determinism.stats());
    if let rehearsal_core::DeterminismReport::NonDeterministic(cex, _) = &determinism {
        let detail = format!(
            "order A {}, order B {}",
            outcome_word(cex.outcome_a.is_ok()),
            outcome_word(cex.outcome_b.is_ok()),
        );
        diagnostics.push(race_diagnostic(cex, graph));
        return AnalyzeOutcome {
            verdict: Verdict::Nondeterministic,
            detail,
            resources,
            counters,
            diagnostics,
        };
    }

    // The idempotence stage runs under whatever deadline remains.
    if let Some(total) = options.timeout {
        options.timeout = Some(total.saturating_sub(started.elapsed()));
    }
    match check_idempotence(graph, &options) {
        Ok(report) if report.is_idempotent() => AnalyzeOutcome {
            verdict: Verdict::Deterministic,
            detail: String::new(),
            resources,
            counters,
            diagnostics,
        },
        Ok(report) => {
            diagnostics.extend(idempotence_diagnostics(&report, graph));
            AnalyzeOutcome {
                verdict: Verdict::Nonidempotent,
                detail: "applying twice differs from applying once".to_string(),
                resources,
                counters,
                diagnostics,
            }
        }
        Err(aborted) => {
            diagnostics.push(aborted_diagnostic(&aborted));
            AnalyzeOutcome {
                verdict: Verdict::Timeout,
                detail: aborted.reason,
                resources,
                counters,
                diagnostics,
            }
        }
    }
}

fn outcome_word(ok: bool) -> &'static str {
    if ok {
        "succeeds"
    } else {
        "errors"
    }
}

/// Convenience shorthand: discover `.pp` files under `root` and verify
/// them on one platform with default options.
///
/// # Errors
///
/// I/O errors from discovery.
pub fn verify_directory(root: impl AsRef<Path>, platform: Platform) -> io::Result<FleetReport> {
    let paths = crate::discover::discover_manifests(root)?;
    Ok(FleetEngine::new(FleetOptions::default()).run_paths(&paths, &[platform]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, source: &str) -> FleetJob {
        FleetJob {
            name: name.to_string(),
            source: source.to_string(),
            platform: Platform::Ubuntu,
        }
    }

    #[test]
    fn core_split_covers_every_request_shape() {
        // Both auto: one job per manifest up to the core count, leftover
        // cores become explorer threads.
        assert_eq!(resolve_core_split(8, 0, 0, 2), (2, 4));
        // Historical default: more manifests than cores → jobs = cores,
        // threads = 1.
        assert_eq!(resolve_core_split(4, 0, 0, 100), (4, 1));
        // --jobs alone: leftover cores divided into threads.
        assert_eq!(resolve_core_split(8, 2, 0, 100), (2, 4));
        // --threads alone: leftover cores divided into jobs.
        assert_eq!(resolve_core_split(8, 0, 4, 100), (2, 4));
        // Both given and they fit: honored verbatim.
        assert_eq!(resolve_core_split(8, 2, 3, 100), (2, 3));
        // Oversubscribed: jobs win, threads scale down.
        assert_eq!(resolve_core_split(4, 4, 4, 100), (4, 1));
        // Degenerate single core never yields zero of either.
        assert_eq!(resolve_core_split(1, 0, 0, 3), (1, 1));
        assert_eq!(resolve_core_split(1, 0, 8, 3), (1, 8));
    }

    #[test]
    fn verdicts_across_the_spectrum() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let report = engine.run(vec![
            job("ok.pp", "file { '/etc/motd': content => 'hi' }"),
            job(
                "race.pp",
                "package { 'vim': ensure => present }\n\
                 file { '/home/carol/.vimrc': content => 'syntax on' }\n\
                 user { 'carol': ensure => present, managehome => true }",
            ),
            job("broken.pp", "exec { 'apt-get update': }"),
            job(
                "twice.pp",
                "file { '/dst': source => '/src' }\n\
                 file { '/src': ensure => absent }\n\
                 File['/dst'] -> File['/src']",
            ),
        ]);
        let verdicts: Vec<&Verdict> = report.rows.iter().map(|r| &r.verdict).collect();
        assert_eq!(
            verdicts,
            [
                &Verdict::Deterministic,
                &Verdict::Nondeterministic,
                &Verdict::Error,
                &Verdict::Nonidempotent,
            ]
        );
        let c = report.counts();
        assert_eq!(c.total(), 4);
        assert_eq!(c.failures(), 3);
        assert_eq!(c.cached, 0);
    }

    #[test]
    fn lint_findings_ride_rows_without_changing_verdicts() {
        let src = "$unused = 1\nfile { '/etc/motd': content => 'hi' }";
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1).with_lint(true));
        let report = engine.run(vec![job("lint.pp", src)]);
        assert_eq!(report.rows[0].verdict, Verdict::Deterministic);
        let codes: Vec<&str> = report.rows[0]
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        assert!(codes.contains(&"R2005"), "{codes:?}");
        assert!(report.all_clean(), "lint findings never fail the gate");
        // A cached second run still re-attaches lint findings (they are
        // source-derived and deliberately not stored in the cache).
        let second = engine.run(vec![job("lint.pp", src)]);
        assert!(second.rows[0].cached);
        assert!(second.rows[0].diagnostics.iter().any(|d| d.code == "R2005"));
        // Lint off: no R2xxx diagnostics on the row.
        let mut plain = FleetEngine::new(FleetOptions::default().with_jobs(1));
        let report = plain.run(vec![job("lint.pp", src)]);
        assert!(report.rows[0]
            .diagnostics
            .iter()
            .all(|d| !d.code.starts_with("R2")));
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let jobs = vec![
            job("a.pp", "file { '/etc/motd': content => 'a' }"),
            job("b.pp", "file { '/etc/motd2': content => 'b' }"),
        ];
        let first = engine.run(jobs.clone());
        assert_eq!(first.counts().cached, 0);
        let second = engine.run(jobs);
        assert_eq!(second.counts().cached, 2);
        assert_eq!(second.counts().deterministic, 2);
        assert!(second.rows.iter().all(|r| r.cached && r.millis == 0));
    }

    #[test]
    fn duplicate_jobs_are_analyzed_once() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
        let report = engine.run(vec![
            job("copy-a.pp", "file { '/etc/motd': content => 'same' }"),
            job("copy-b.pp", "file { '/etc/motd': content => 'same' }"),
        ]);
        // Both rows are filled with their own names, from one analysis.
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].manifest, "copy-a.pp");
        assert_eq!(report.rows[1].manifest, "copy-b.pp");
        assert_eq!(report.rows[0].verdict, Verdict::Deterministic);
        assert_eq!(report.rows[1].verdict, Verdict::Deterministic);
        assert_eq!(engine.state().cache_len(), 1, "one key for both jobs");
    }

    #[test]
    fn source_edit_misses_the_cache() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'a' }")]);
        let report = engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'b' }")]);
        assert_eq!(report.counts().cached, 0);
    }

    #[test]
    fn formatting_edit_hits_the_semantic_cache() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'a' }")]);
        // Same resources, different whitespace, a comment, and reordered
        // declarations — the lowered graph (and hence the key) is equal.
        let report = engine.run(vec![job(
            "a.pp",
            "# motd\nfile { '/etc/motd':\n  content => 'a',\n}",
        )]);
        assert_eq!(report.counts().cached, 1);
        assert_eq!(
            report.rows[0].reuse,
            Some(ReuseCounts {
                resources_clean: 1,
                resources_dirty: 0,
                pairs_reused: 0
            })
        );
    }

    #[test]
    fn renamed_manifest_hits_the_semantic_cache() {
        // The regression for path-sensitive cache keys: the key embeds no
        // manifest name or path, so a rename/move is a hit.
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        engine.run(vec![job(
            "modules/motd/init.pp",
            "file { '/etc/motd': content => 'a' }",
        )]);
        let report = engine.run(vec![job(
            "site/motd.pp",
            "file { '/etc/motd': content => 'a' }",
        )]);
        assert_eq!(report.counts().cached, 1);
        assert_eq!(report.rows[0].manifest, "site/motd.pp");
    }

    #[test]
    fn cancelled_token_times_jobs_out() {
        let token = CancelToken::new();
        token.cancel();
        let mut options = FleetOptions::default().with_jobs(1);
        options.cancel = Some(token);
        let mut engine = FleetEngine::new(options);
        let report = engine.run(vec![job("a.pp", "file { '/etc/motd': content => 'a' }")]);
        assert_eq!(report.rows[0].verdict, Verdict::Timeout);
        // Timeouts are not cached, so a healthy rerun re-analyzes.
        assert_eq!(engine.state().cache_len(), 0);
    }

    #[test]
    fn unreadable_path_becomes_error_row() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1));
        let report = engine.run_paths(&["/no/such/manifest.pp"], &[Platform::Ubuntu]);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Error);
        assert!(report.rows[0].detail.contains("cannot read"));
    }

    const TWO_DISJOINT: &str = "file { '/etc/motd': content => 'a' }\n\
                                file { '/srv/app.conf': content => 'b' }\n\
                                file { '/var/banner': content => 'c' }";

    #[test]
    fn baseline_cold_run_records_entries() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
            .with_baseline(BaselineStore::in_memory());
        let report = engine.run(vec![job("trio.pp", TWO_DISJOINT)]);
        assert_eq!(report.rows[0].verdict, Verdict::Deterministic);
        // A cold run with a baseline attached reports everything dirty…
        assert_eq!(
            report.rows[0].reuse,
            Some(ReuseCounts {
                resources_clean: 0,
                resources_dirty: 3,
                pairs_reused: 0
            })
        );
        // …and records an entry with footprints and pair verdicts.
        assert_eq!(engine.state().baseline_len(), 1);
        let entry = engine
            .state()
            .baseline_find_by_digest(
                {
                    let (graph, _) = Rehearsal::new(Platform::Ubuntu)
                        .lower_source(TWO_DISJOINT)
                        .unwrap();
                    graph_digest(&graph)
                },
                options_fingerprint(Platform::Ubuntu, &AnalysisOptions::default()),
            )
            .unwrap();
        assert_eq!(entry.manifest, "trio.pp");
        assert_eq!(entry.resources.len(), 3);
        assert!(!entry.pairs.is_empty(), "pair verdicts are recorded");
    }

    #[test]
    fn baseline_replays_unedited_manifest_without_analysis() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
            .with_baseline(BaselineStore::in_memory());
        let first = engine.run(vec![job("trio.pp", TWO_DISJOINT)]);
        // Drop the verdict cache but keep the baseline: the digest match
        // replays the verdict (the second run is "another process").
        let baseline = engine.state().take_baseline().unwrap();
        let mut engine2 =
            FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
        let second = engine2.run(vec![job("trio.pp", TWO_DISJOINT)]);
        assert_eq!(second.rows[0].verdict, first.rows[0].verdict);
        assert!(second.rows[0].cached);
        let reuse = second.rows[0].reuse.unwrap();
        assert_eq!(reuse.resources_clean, 3);
        assert_eq!(reuse.resources_dirty, 0);
    }

    #[test]
    fn baseline_slices_an_edit_to_its_dirty_cone() {
        let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
            .with_baseline(BaselineStore::in_memory());
        let cold = engine.run(vec![job("trio.pp", TWO_DISJOINT)]);
        let baseline = engine.state().take_baseline().unwrap();
        // Edit one attribute of one resource; the other two are disjoint
        // from it, so the cone is exactly the edited resource.
        let edited = TWO_DISJOINT.replace("content => 'c'", "content => 'changed'");
        let mut engine2 =
            FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
        let sliced = engine2.run(vec![job("trio.pp", &edited)]);
        assert_eq!(sliced.rows[0].verdict, cold.rows[0].verdict);
        assert!(!sliced.rows[0].cached);
        let reuse = sliced.rows[0].reuse.unwrap();
        assert_eq!(
            reuse.resources_dirty, 1,
            "only the edited resource is dirty"
        );
        assert_eq!(reuse.resources_clean, 2);
        assert!(reuse.pairs_reused > 0, "clean pair verdicts were reused");
    }
}
