//! Manifest discovery: walk a directory tree for `.pp` files, or read an
//! explicit manifest list.

use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects every `*.pp` file under `root`, sorted by path so
/// fleet runs are order-stable. A `root` that is itself a `.pp` file is
/// returned as a single-element list.
///
/// # Errors
///
/// I/O errors from traversal (a missing `root` included).
pub fn discover_manifests(root: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
    let root = root.as_ref();
    let meta = std::fs::metadata(root)?;
    let mut out = Vec::new();
    if meta.is_file() {
        if is_manifest(root) {
            out.push(root.to_path_buf());
        }
        return Ok(out);
    }
    // Follow symlinks (Puppet layouts routinely symlink environments and
    // modules), guarding against link cycles via canonicalized dirs.
    // Broken links are skipped rather than failing the whole walk.
    let mut visited = std::collections::BTreeSet::new();
    if let Ok(canonical) = std::fs::canonicalize(root) {
        visited.insert(canonical);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let Ok(meta) = std::fs::metadata(&path) else {
                continue; // broken symlink
            };
            if meta.is_dir() {
                if let Ok(canonical) = std::fs::canonicalize(&path) {
                    if visited.insert(canonical) {
                        stack.push(path);
                    }
                }
            } else if meta.is_file() && is_manifest(&path) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Reads an explicit manifest list: one path per line, `#` comments and
/// blank lines ignored. Relative paths are resolved against the list
/// file's directory.
///
/// # Errors
///
/// I/O errors reading the list file.
pub fn read_manifest_list(list_path: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
    let list_path = list_path.as_ref();
    let text = std::fs::read_to_string(list_path)?;
    let base = list_path.parent().unwrap_or(Path::new("."));
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let path = Path::new(line);
        out.push(if path.is_absolute() {
            path.to_path_buf()
        } else {
            base.join(path)
        });
    }
    Ok(out)
}

fn is_manifest(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "pp")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("rehearsal-fleet-discover")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn walks_recursively_and_sorts() {
        let dir = scratch("walk");
        std::fs::create_dir_all(dir.join("sub/deep")).unwrap();
        std::fs::write(dir.join("b.pp"), "").unwrap();
        std::fs::write(dir.join("a.pp"), "").unwrap();
        std::fs::write(dir.join("sub/deep/c.pp"), "").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        let found = discover_manifests(&dir).unwrap();
        let names: Vec<String> = found
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.pp", "b.pp", "sub/deep/c.pp"]);
    }

    #[test]
    fn single_file_root() {
        let dir = scratch("single");
        let file = dir.join("site.pp");
        std::fs::write(&file, "").unwrap();
        assert_eq!(discover_manifests(&file).unwrap(), vec![file]);
    }

    #[test]
    fn missing_root_errors() {
        assert!(discover_manifests("/no/such/fleet/root").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn symlinked_manifests_and_dirs_are_followed() {
        let dir = scratch("symlinks");
        std::fs::create_dir_all(dir.join("shared")).unwrap();
        std::fs::write(dir.join("shared/real.pp"), "").unwrap();
        // Symlinked file, symlinked directory, a cycle, and a broken link.
        std::os::unix::fs::symlink(dir.join("shared/real.pp"), dir.join("site.pp")).unwrap();
        std::os::unix::fs::symlink(dir.join("shared"), dir.join("env")).unwrap();
        std::os::unix::fs::symlink(&dir, dir.join("shared/loop")).unwrap();
        std::os::unix::fs::symlink(dir.join("gone.pp"), dir.join("broken.pp")).unwrap();
        let found = discover_manifests(&dir).unwrap();
        let names: Vec<String> = found
            .iter()
            .map(|p| p.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
            .collect();
        // The symlinked file and the real file are both seen; the `env`
        // symlink dir and `shared` are the same canonical dir so only one
        // of them is walked, the loop terminates, and the broken link is
        // skipped.
        assert_eq!(names.len(), 2, "{names:?}");
        assert!(names.contains(&"site.pp".to_string()), "{names:?}");
        assert!(names.iter().any(|n| n.ends_with("real.pp")), "{names:?}");
    }

    #[test]
    fn manifest_list_resolves_relative_paths() {
        let dir = scratch("list");
        std::fs::write(dir.join("x.pp"), "").unwrap();
        let list = dir.join("fleet.list");
        std::fs::write(&list, "# comment\n\nx.pp\n/abs/y.pp\n").unwrap();
        let found = read_manifest_list(&list).unwrap();
        assert_eq!(found, vec![dir.join("x.pp"), PathBuf::from("/abs/y.pp")]);
    }
}
