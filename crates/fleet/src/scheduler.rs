//! A work-stealing scheduler on scoped threads.
//!
//! The job set is fixed up front (no job spawns jobs), so the classic
//! Chase–Lev machinery is unnecessary: each worker owns a deque behind a
//! mutex, pops from the front of its own, and steals from the back of the
//! busiest other deque when it runs dry. Stealing from the back keeps each
//! worker's locality (neighbouring manifests tend to share interned paths)
//! while spreading the stragglers.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f` over `items` on `workers` scoped threads with work stealing.
/// Results come back in input order. `f` receives `(worker_id, item)`.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first).
pub fn run_work_stealing<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Deal items out round-robin so every worker starts loaded.
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers]
            .lock()
            .expect("queue poisoned")
            .push_back((i, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                let job = next_job(queues, me);
                let Some((index, item)) = job else { break };
                let out = f(me, item);
                *results[index].lock().expect("result poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("every job ran")
        })
        .collect()
}

/// Pops local work, or steals from the longest other queue.
fn next_job<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    if let Some(job) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(job);
    }
    // Pick the victim with the most remaining work, then steal its tail.
    let victim = (0..queues.len())
        .filter(|&v| v != me)
        .max_by_key(|&v| queues[v].lock().expect("queue poisoned").len())?;
    queues[victim].lock().expect("queue poisoned").pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = run_work_stealing(items, 4, |_, x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_work_stealing(Vec::<usize>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let out = run_work_stealing(vec![1, 2, 3], 0, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // One slow job at the head of worker 0's deque; the rest are
        // instant. Every job must still complete exactly once.
        let ran = AtomicUsize::new(0);
        let out = run_work_stealing((0..32).collect::<Vec<_>>(), 4, |_, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn worker_ids_stay_in_range() {
        let out = run_work_stealing((0..16).collect::<Vec<_>>(), 3, |w, _| w);
        assert!(out.into_iter().all(|w| w < 3));
    }
}
