//! A work-stealing scheduler on scoped threads.
//!
//! The job set is fixed up front (no job spawns jobs), so the classic
//! Chase–Lev machinery is unnecessary: each worker owns a deque behind a
//! mutex, pops from the front of its own, and steals from the back of the
//! busiest other deque when it runs dry. Stealing from the back keeps each
//! worker's locality (neighbouring manifests tend to share interned paths)
//! while spreading the stragglers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the scheduler saw during one run: how unbalanced the deal-out was
/// and how often workers had to steal to stay busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Successful steals (a worker ran dry and took a job from another
    /// worker's deque).
    pub steals: u64,
    /// Deepest any worker's deque got (measured right after deal-out,
    /// which is the high-water mark: deques only shrink afterwards).
    pub max_queue_depth: usize,
}

/// Runs `f` over `items` on `workers` scoped threads with work stealing.
/// Results come back in input order. `f` receives `(worker_id, item)`.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first).
pub fn run_work_stealing<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_work_stealing_with_stats(items, workers, f).0
}

/// Like [`run_work_stealing`], but also reports [`SchedulerStats`].
pub fn run_work_stealing_with_stats<T, R, F>(
    items: Vec<T>,
    workers: usize,
    f: F,
) -> (Vec<R>, SchedulerStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Deal items out round-robin so every worker starts loaded.
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers]
            .lock()
            .expect("queue poisoned")
            .push_back((i, item));
    }
    let max_queue_depth = queues
        .iter()
        .map(|q| q.lock().expect("queue poisoned").len())
        .max()
        .unwrap_or(0);
    let steals = AtomicU64::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || loop {
                let job = next_job(queues, me, steals);
                let Some((index, item)) = job else { break };
                let out = f(me, item);
                *results[index].lock().expect("result poisoned") = Some(out);
            });
        }
    });

    let results = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result poisoned")
                .expect("every job ran")
        })
        .collect();
    let stats = SchedulerStats {
        steals: steals.load(Ordering::Relaxed),
        max_queue_depth,
    };
    (results, stats)
}

/// Pops local work, or steals from the longest other queue.
fn next_job<T>(
    queues: &[Mutex<VecDeque<(usize, T)>>],
    me: usize,
    steals: &AtomicU64,
) -> Option<(usize, T)> {
    if let Some(job) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(job);
    }
    // Pick the victim with the most remaining work, then steal its tail.
    let victim = (0..queues.len())
        .filter(|&v| v != me)
        .max_by_key(|&v| queues[v].lock().expect("queue poisoned").len())?;
    let stolen = queues[victim].lock().expect("queue poisoned").pop_back();
    if stolen.is_some() {
        steals.fetch_add(1, Ordering::Relaxed);
    }
    stolen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = run_work_stealing(items, 4, |_, x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_work_stealing(Vec::<usize>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let out = run_work_stealing(vec![1, 2, 3], 0, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // One slow job at the head of worker 0's deque; the rest are
        // instant. Every job must still complete exactly once.
        let ran = AtomicUsize::new(0);
        let out = run_work_stealing((0..32).collect::<Vec<_>>(), 4, |_, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn stats_report_depth_and_steals() {
        // 10 jobs over 4 workers: round-robin gives 3/3/2/2.
        let (out, stats) = run_work_stealing_with_stats((0..10).collect::<Vec<_>>(), 4, |_, x| x);
        assert_eq!(out.len(), 10);
        assert_eq!(stats.max_queue_depth, 3);

        // Single worker never steals.
        let (_, solo) = run_work_stealing_with_stats((0..10).collect::<Vec<_>>(), 1, |_, x| x);
        assert_eq!(solo.steals, 0);
        assert_eq!(solo.max_queue_depth, 10);

        // Empty input: nothing queued, nothing stolen.
        let (empty, stats) = run_work_stealing_with_stats(Vec::<usize>::new(), 4, |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(stats, SchedulerStats::default());
    }

    #[test]
    fn worker_ids_stay_in_range() {
        let out = run_work_stealing((0..16).collect::<Vec<_>>(), 3, |w, _| w);
        assert!(out.into_iter().all(|w| w < 3));
    }
}
