//! The fleet report: per-manifest verdict rows, aggregate counters, and
//! renderers (human table + stable JSON for pipelines).

use crate::json::{diagnostic_json, Json};
use rehearsal_diag::Diagnostic;
use rehearsal_pkgdb::Platform;

/// The verdict for one `(manifest, platform)` job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deterministic and idempotent — the manifest is correct.
    Deterministic,
    /// Two resource orders can produce different outcomes.
    Nondeterministic,
    /// Deterministic, but applying twice differs from applying once.
    Nonidempotent,
    /// The pipeline failed before a verdict (parse/eval/compile error).
    Error,
    /// The analysis exceeded its deadline (or was cancelled).
    Timeout,
}

impl Verdict {
    /// Stable lower-case label used in JSON and the cache.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Deterministic => "deterministic",
            Verdict::Nondeterministic => "nondeterministic",
            Verdict::Nonidempotent => "nonidempotent",
            Verdict::Error => "error",
            Verdict::Timeout => "timeout",
        }
    }

    /// Parses a [`Verdict::label`] back (for cache loads).
    pub fn from_label(label: &str) -> Option<Verdict> {
        Some(match label {
            "deterministic" => Verdict::Deterministic,
            "nondeterministic" => Verdict::Nondeterministic,
            "nonidempotent" => Verdict::Nonidempotent,
            "error" => Verdict::Error,
            "timeout" => Verdict::Timeout,
            _ => return None,
        })
    }

    /// Whether this verdict passes a CI gate.
    pub fn is_pass(&self) -> bool {
        matches!(self, Verdict::Deterministic)
    }
}

/// Explorer/solver work counters for one analyzed job (all zero for cache
/// hits and pre-verdict errors — no analysis ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisCounters {
    /// Sequences the determinacy explorer covered (including state-cache
    /// skips).
    pub sequences_explored: usize,
    /// Of those, sequences covered via explorer state-cache hits.
    pub sequences_skipped: usize,
    /// CDCL conflicts in the incremental solver.
    pub solver_conflicts: u64,
    /// Literals propagated by the incremental solver.
    pub solver_propagations: u64,
    /// Formula nodes grounded to CNF (each exactly once).
    pub grounded_nodes: u64,
    /// Grounding requests answered by an already-grounded node.
    pub grounded_reused: u64,
    /// Metadata operations (`chown`/`chgrp`/`chmod`) in the analyzed
    /// programs (zero when the metadata model is off).
    pub meta_ops: usize,
    /// Paths whose metadata the encoding tracked.
    pub meta_tracked_paths: usize,
}

impl AnalysisCounters {
    /// Fraction of grounding requests served by reuse (delegates to the
    /// solver-layer [`rehearsal_solver::GroundingStats`], the single
    /// definition of the ratio).
    pub fn grounding_reuse_ratio(&self) -> f64 {
        rehearsal_solver::GroundingStats {
            grounded_nodes: self.grounded_nodes,
            reused_nodes: self.grounded_reused,
            grounded_clauses: 0,
        }
        .reuse_ratio()
    }
}

impl From<&rehearsal_core::DeterminismStats> for AnalysisCounters {
    /// The fleet-report subset of a determinism check's statistics. Kept
    /// as a `From` impl (rather than field-by-field copies at call sites)
    /// so a counter rename or semantic change fails to compile here
    /// instead of silently dropping out of the report.
    fn from(stats: &rehearsal_core::DeterminismStats) -> AnalysisCounters {
        AnalysisCounters {
            sequences_explored: stats.sequences_explored,
            sequences_skipped: stats.sequences_skipped,
            solver_conflicts: stats.solver_conflicts,
            solver_propagations: stats.solver_propagations,
            grounded_nodes: stats.grounded_nodes,
            grounded_reused: stats.grounded_reused,
            meta_ops: stats.meta_ops,
            meta_tracked_paths: stats.meta_tracked_paths,
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Manifest display name (the path it was discovered under).
    pub manifest: String,
    /// Target platform.
    pub platform: Platform,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable detail (counterexample summary or error text).
    pub detail: String,
    /// Resources in the manifest's graph (0 when unknown).
    pub resources: usize,
    /// Wall-clock the analysis took, in milliseconds (0 for cache hits).
    /// Equal to [`JobResult::run_ms`]; kept for report back-compat.
    pub millis: u64,
    /// Time the job sat in the scheduler queue before a worker picked it
    /// up, in milliseconds (0 for cache hits, which never enqueue).
    /// Reported separately from [`JobResult::run_ms`] so queue wait under
    /// a saturated worker pool is visible instead of inflating the
    /// analysis time.
    pub queue_ms: u64,
    /// Time a worker actually spent analyzing, in milliseconds (0 for
    /// cache hits).
    pub run_ms: u64,
    /// Per-phase wall-clock for this job as `(phase, micros)`, in
    /// first-appearance order; empty when tracing was off or the row is a
    /// cache hit.
    pub phases: Vec<(String, u64)>,
    /// Whether the verdict came from the cache without re-analysis.
    pub cached: bool,
    /// Explorer/solver work done for this job.
    pub counters: AnalysisCounters,
    /// The job's source-anchored findings (the race report, pipeline
    /// errors, modeling warnings); empty for clean manifests. Cache hits
    /// restore the diagnostics recorded at analysis time.
    pub diagnostics: Vec<Diagnostic>,
    /// Differential-verification accounting (`None` when the run had no
    /// incremental context — no cache or baseline consulted this row).
    pub reuse: Option<ReuseCounts>,
}

/// How much of a job's analysis was reused from incremental context (the
/// semantic verdict cache and the `--baseline` store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseCounts {
    /// Resources outside the edit's dirty cone: their baseline pair
    /// verdicts were eligible for reuse. Equal to the resource count on a
    /// full cache or baseline hit.
    pub resources_clean: usize,
    /// Resources inside the dirty cone (edited, overlapping an edit, or
    /// ordered relative to one): re-analyzed from scratch. Equal to the
    /// resource count on a cold run.
    pub resources_dirty: usize,
    /// Pairwise commutativity checks answered from the baseline instead
    /// of recomputed.
    pub pairs_reused: u64,
}

/// Aggregate counters over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounts {
    /// Jobs that verified deterministic + idempotent.
    pub deterministic: usize,
    /// Jobs with a determinism counterexample.
    pub nondeterministic: usize,
    /// Deterministic jobs that failed the idempotence check.
    pub nonidempotent: usize,
    /// Jobs that errored before a verdict.
    pub error: usize,
    /// Jobs that hit the per-job deadline.
    pub timeout: usize,
    /// Jobs answered from the verdict cache.
    pub cached: usize,
}

impl FleetCounts {
    /// Total number of jobs.
    pub fn total(&self) -> usize {
        self.deterministic + self.nondeterministic + self.nonidempotent + self.error + self.timeout
    }

    /// Jobs that would fail a CI gate.
    pub fn failures(&self) -> usize {
        self.total() - self.deterministic
    }
}

/// The result of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One row per `(manifest, platform)` job, in input order.
    pub rows: Vec<JobResult>,
    /// Wall-clock for the whole run, in milliseconds.
    pub wall_millis: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Explorer threads each job's analysis ran with (the resolved
    /// `--jobs`/`--threads` core split).
    pub threads: usize,
    /// Successful work steals between workers during the run.
    pub steals: u64,
    /// Deepest any worker's queue got (right after deal-out).
    pub max_queue_depth: usize,
    /// Fleet-level metrics: scheduler counters (always present) plus
    /// every per-job session's registry merged in (counters add, gauges
    /// keep the max). Per-job pipeline metrics appear only when the
    /// caller had a trace session installed during the run.
    pub metrics: rehearsal_trace::MetricsSnapshot,
}

impl FleetReport {
    /// Aggregates the rows.
    pub fn counts(&self) -> FleetCounts {
        let mut c = FleetCounts::default();
        for row in &self.rows {
            match row.verdict {
                Verdict::Deterministic => c.deterministic += 1,
                Verdict::Nondeterministic => c.nondeterministic += 1,
                Verdict::Nonidempotent => c.nonidempotent += 1,
                Verdict::Error => c.error += 1,
                Verdict::Timeout => c.timeout += 1,
            }
            if row.cached {
                c.cached += 1;
            }
        }
        c
    }

    /// Whether every job passed (the CI-gate condition).
    pub fn all_clean(&self) -> bool {
        self.rows.iter().all(|r| r.verdict.is_pass())
    }

    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "workers: {} × {} explorer thread(s)\n",
            self.jobs,
            self.threads.max(1)
        ));
        out.push_str(&format!(
            "{:<34} {:<8} {:<17} {:>6} {:>8} {:>9}  detail\n",
            "manifest", "platform", "verdict", "res", "queue", "time"
        ));
        for row in &self.rows {
            let (queue, time) = if row.cached {
                ("-".to_string(), "cached".to_string())
            } else {
                (format!("{}ms", row.queue_ms), format!("{}ms", row.run_ms))
            };
            out.push_str(&format!(
                "{:<34} {:<8} {:<17} {:>6} {:>8} {:>9}  {}\n",
                truncate(&row.manifest, 34),
                row.platform,
                row.verdict.label(),
                row.resources,
                queue,
                time,
                truncate(&row.detail, 60),
            ));
        }
        let c = self.counts();
        out.push_str(&format!(
            "\n{} manifests in {}ms on {} worker(s): \
             {} deterministic, {} nondeterministic, {} nonidempotent, \
             {} error, {} timeout ({} cached)\n",
            c.total(),
            self.wall_millis,
            self.jobs,
            c.deterministic,
            c.nondeterministic,
            c.nonidempotent,
            c.error,
            c.timeout,
            c.cached,
        ));
        out.push_str(if self.all_clean() {
            "fleet is clean ✔\n"
        } else {
            "fleet has failures ✘\n"
        });
        out
    }

    /// Renders the stable JSON document (see `README.md` for the schema).
    pub fn to_json(&self) -> Json {
        let c = self.counts();
        Json::obj([
            ("schema", Json::str("rehearsal-fleet-report/3")),
            (
                "manifests",
                Json::Arr(self.rows.iter().map(row_json).collect()),
            ),
            (
                "counts",
                Json::obj([
                    ("total", Json::num(c.total() as u32)),
                    ("deterministic", Json::num(c.deterministic as u32)),
                    ("nondeterministic", Json::num(c.nondeterministic as u32)),
                    ("nonidempotent", Json::num(c.nonidempotent as u32)),
                    ("error", Json::num(c.error as u32)),
                    ("timeout", Json::num(c.timeout as u32)),
                    ("cached", Json::num(c.cached as u32)),
                ]),
            ),
            ("wall_millis", Json::num(self.wall_millis as u32)),
            ("jobs", Json::num(self.jobs as u32)),
            (
                "scheduler",
                Json::obj([
                    ("steals", Json::Num(self.steals as f64)),
                    ("max_queue_depth", Json::num(self.max_queue_depth as u32)),
                ]),
            ),
            ("metrics", metrics_json(&self.metrics)),
            ("clean", Json::Bool(self.all_clean())),
        ])
    }
}

/// Serializes a metrics snapshot: counters and gauges verbatim,
/// histograms as `{count, sum, max}` summaries (per-bucket detail stays in
/// the Prometheus export, where `le` labels are idiomatic). Shared with
/// the CLI's `check --json` document.
pub fn metrics_json(m: &rehearsal_trace::MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(
                m.counters()
                    .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges()
                    .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histogram_names()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|k| {
                        let h = m.histogram(&k).expect("name came from the snapshot");
                        (
                            k,
                            Json::obj([
                                ("count", Json::Num(h.count as f64)),
                                ("sum", Json::Num(h.sum as f64)),
                                ("max", Json::Num(h.max as f64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `check --json` document (schema `rehearsal-check/5`), shared by
/// the CLI and the daemon so the two can never drift apart field by
/// field. `report` is `None` when the pipeline failed before a verdict;
/// the error then lives in `diagnostics`. `obs` is the run's trace
/// snapshot, feeding the `phases` and `metrics` objects.
pub fn check_document(
    manifest: &str,
    platform: Platform,
    model_metadata: bool,
    report: Option<&rehearsal_core::DeterminismReport>,
    idempotence: Option<&rehearsal_core::IdempotenceReport>,
    diagnostics: &[Diagnostic],
    obs: Option<&rehearsal_trace::TraceSnapshot>,
) -> Json {
    let stats = report.map(|r| r.stats()).unwrap_or_default();
    let verdict = match report {
        None => "error",
        Some(r) if !r.is_deterministic() => "nondeterministic",
        Some(_) if idempotence.is_some_and(|i| !i.is_idempotent()) => "nonidempotent",
        Some(_) => "deterministic",
    };
    let phases = obs
        .map(rehearsal_trace::TraceSnapshot::phase_totals)
        .unwrap_or_default();
    Json::obj([
        ("schema", Json::str("rehearsal-check/5")),
        ("manifest", Json::str(manifest)),
        ("platform", Json::str(platform.to_string())),
        ("model_metadata", Json::Bool(model_metadata)),
        ("verdict", Json::str(verdict)),
        (
            "deterministic",
            match report {
                Some(r) => Json::Bool(r.is_deterministic()),
                None => Json::Null,
            },
        ),
        (
            "idempotent",
            match idempotence {
                Some(i) => Json::Bool(i.is_idempotent()),
                None => Json::Null,
            },
        ),
        (
            "diagnostics",
            Json::Arr(diagnostics.iter().map(diagnostic_json).collect()),
        ),
        (
            "stats",
            Json::obj([
                ("resources", Json::num(stats.resources as u32)),
                (
                    "resources_after_elimination",
                    Json::num(stats.resources_after_elimination as u32),
                ),
                ("paths", Json::num(stats.paths as u32)),
                ("tracked_paths", Json::num(stats.tracked_paths as u32)),
                ("meta_ops", Json::num(stats.meta_ops as u32)),
                (
                    "meta_tracked_paths",
                    Json::num(stats.meta_tracked_paths as u32),
                ),
                // Sequence and solver counters can exceed u32 (the state
                // cache accounts factorial spaces; propagations run tens
                // of millions/second) — serialize as f64 to keep the
                // magnitude honest.
                (
                    "sequences_explored",
                    Json::Num(stats.sequences_explored as f64),
                ),
                (
                    "sequences_skipped",
                    Json::Num(stats.sequences_skipped as f64),
                ),
                ("state_cache_hits", Json::num(stats.state_cache_hits as u32)),
                ("distinct_outputs", Json::num(stats.distinct_outputs as u32)),
                ("formula_nodes", Json::num(stats.formula_nodes as u32)),
                ("solver_conflicts", Json::Num(stats.solver_conflicts as f64)),
                (
                    "solver_propagations",
                    Json::Num(stats.solver_propagations as f64),
                ),
                ("grounded_clauses", Json::Num(stats.grounded_clauses as f64)),
                (
                    "grounding_reuse_ratio",
                    Json::Num((stats.grounding_reuse_ratio() * 10000.0).round() / 10000.0),
                ),
            ]),
        ),
        (
            "phases",
            Json::Obj(
                phases
                    .iter()
                    .map(|p| (p.name.clone(), Json::Num(p.total_us as f64 / 1000.0)))
                    .collect(),
            ),
        ),
        (
            "metrics",
            match obs {
                Some(snap) => metrics_json(&snap.metrics),
                None => Json::Null,
            },
        ),
    ])
}

/// The `rehearsal-check/5` document rebuilt from a fleet [`JobResult`]
/// row — the daemon's `/v1/check` response body. The verdict, detail,
/// diagnostics, phases, and the counters a row carries are identical to
/// what the batch CLI would report for the same job; stats the row does
/// not record (formula nodes, distinct outputs, …) serialize as zero,
/// exactly as they do for a cache hit.
pub fn check_document_from_row(
    row: &JobResult,
    model_metadata: bool,
    metrics: Option<&rehearsal_trace::MetricsSnapshot>,
) -> Json {
    let c = &row.counters;
    let (deterministic, idempotent) = match row.verdict {
        Verdict::Deterministic => (Json::Bool(true), Json::Bool(true)),
        Verdict::Nondeterministic => (Json::Bool(false), Json::Null),
        Verdict::Nonidempotent => (Json::Bool(true), Json::Bool(false)),
        Verdict::Error | Verdict::Timeout => (Json::Null, Json::Null),
    };
    Json::obj([
        ("schema", Json::str("rehearsal-check/5")),
        ("manifest", Json::str(&row.manifest)),
        ("platform", Json::str(row.platform.to_string())),
        ("model_metadata", Json::Bool(model_metadata)),
        ("verdict", Json::str(row.verdict.label())),
        ("deterministic", deterministic),
        ("idempotent", idempotent),
        ("detail", Json::str(&row.detail)),
        (
            "diagnostics",
            Json::Arr(row.diagnostics.iter().map(diagnostic_json).collect()),
        ),
        (
            "stats",
            Json::obj([
                ("resources", Json::num(row.resources as u32)),
                ("meta_ops", Json::num(c.meta_ops as u32)),
                ("meta_tracked_paths", Json::num(c.meta_tracked_paths as u32)),
                ("sequences_explored", Json::Num(c.sequences_explored as f64)),
                ("sequences_skipped", Json::Num(c.sequences_skipped as f64)),
                ("solver_conflicts", Json::Num(c.solver_conflicts as f64)),
                (
                    "solver_propagations",
                    Json::Num(c.solver_propagations as f64),
                ),
                (
                    "grounding_reuse_ratio",
                    Json::Num((c.grounding_reuse_ratio() * 10000.0).round() / 10000.0),
                ),
            ]),
        ),
        (
            "phases",
            Json::Obj(
                row.phases
                    .iter()
                    .map(|(name, us)| (name.clone(), Json::Num(*us as f64 / 1000.0)))
                    .collect(),
            ),
        ),
        ("cached", Json::Bool(row.cached)),
        (
            "reuse",
            match &row.reuse {
                None => Json::Null,
                Some(r) => Json::obj([
                    ("resources_clean", Json::num(r.resources_clean as u32)),
                    ("resources_dirty", Json::num(r.resources_dirty as u32)),
                    ("pairs_reused", Json::Num(r.pairs_reused as f64)),
                ]),
            },
        ),
        (
            "metrics",
            match metrics {
                Some(m) => metrics_json(m),
                None => Json::Null,
            },
        ),
    ])
}

fn row_json(row: &JobResult) -> Json {
    let c = &row.counters;
    Json::obj([
        ("manifest", Json::str(&row.manifest)),
        ("platform", Json::str(row.platform.to_string())),
        ("verdict", Json::str(row.verdict.label())),
        ("detail", Json::str(&row.detail)),
        ("resources", Json::num(row.resources as u32)),
        ("millis", Json::num(row.millis as u32)),
        ("queue_ms", Json::num(row.queue_ms as u32)),
        ("run_ms", Json::num(row.run_ms as u32)),
        (
            "phases",
            Json::Obj(
                row.phases
                    .iter()
                    .map(|(name, us)| (name.clone(), Json::Num(*us as f64 / 1000.0)))
                    .collect(),
            ),
        ),
        ("cached", Json::Bool(row.cached)),
        (
            "reuse",
            match &row.reuse {
                None => Json::Null,
                Some(r) => Json::obj([
                    ("resources_clean", Json::num(r.resources_clean as u32)),
                    ("resources_dirty", Json::num(r.resources_dirty as u32)),
                    ("pairs_reused", Json::Num(r.pairs_reused as f64)),
                ]),
            },
        ),
        (
            "diagnostics",
            Json::Arr(row.diagnostics.iter().map(diagnostic_json).collect()),
        ),
        (
            "counters",
            Json::obj([
                // Counters can exceed u32 on long solves (propagation
                // rates run tens of millions/second); serialize as f64 to
                // preserve magnitude.
                ("sequences_explored", Json::Num(c.sequences_explored as f64)),
                ("sequences_skipped", Json::Num(c.sequences_skipped as f64)),
                ("solver_conflicts", Json::Num(c.solver_conflicts as f64)),
                (
                    "solver_propagations",
                    Json::Num(c.solver_propagations as f64),
                ),
                (
                    "grounding_reuse_ratio",
                    Json::Num((c.grounding_reuse_ratio() * 10000.0).round() / 10000.0),
                ),
                ("meta_ops", Json::num(c.meta_ops as u32)),
                ("meta_tracked_paths", Json::num(c.meta_tracked_paths as u32)),
            ]),
        ),
    ])
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(verdict: Verdict, cached: bool) -> JobResult {
        JobResult {
            manifest: "site.pp".to_string(),
            platform: Platform::Ubuntu,
            verdict,
            detail: String::new(),
            resources: 3,
            millis: 5,
            queue_ms: 1,
            run_ms: 5,
            phases: Vec::new(),
            cached,
            counters: AnalysisCounters::default(),
            diagnostics: Vec::new(),
            reuse: None,
        }
    }

    #[test]
    fn counts_aggregate() {
        let report = FleetReport {
            rows: vec![
                row(Verdict::Deterministic, true),
                row(Verdict::Nondeterministic, false),
                row(Verdict::Timeout, false),
            ],
            wall_millis: 12,
            jobs: 2,
            threads: 1,
            steals: 0,
            max_queue_depth: 2,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        let c = report.counts();
        assert_eq!(c.total(), 3);
        assert_eq!(c.deterministic, 1);
        assert_eq!(c.nondeterministic, 1);
        assert_eq!(c.timeout, 1);
        assert_eq!(c.cached, 1);
        assert_eq!(c.failures(), 2);
        assert!(!report.all_clean());
    }

    #[test]
    fn verdict_labels_roundtrip() {
        for v in [
            Verdict::Deterministic,
            Verdict::Nondeterministic,
            Verdict::Nonidempotent,
            Verdict::Error,
            Verdict::Timeout,
        ] {
            assert_eq!(Verdict::from_label(v.label()), Some(v));
        }
        assert_eq!(Verdict::from_label("nonsense"), None);
    }

    #[test]
    fn json_shape_is_stable() {
        let report = FleetReport {
            rows: vec![row(Verdict::Deterministic, false)],
            wall_millis: 7,
            jobs: 1,
            threads: 1,
            steals: 2,
            max_queue_depth: 1,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        let j = report.to_json();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("rehearsal-fleet-report/3")
        );
        let counts = j.get("counts").expect("counts");
        assert_eq!(counts.get("total").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("clean").and_then(Json::as_bool), Some(true));
        let rows = j.get("manifests").and_then(Json::as_arr).expect("rows");
        assert_eq!(
            rows[0].get("verdict").and_then(Json::as_str),
            Some("deterministic")
        );
        let counters = rows[0].get("counters").expect("counters object");
        assert_eq!(
            counters.get("sequences_explored").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            counters.get("solver_conflicts").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(rows[0].get("queue_ms").and_then(Json::as_u64), Some(1));
        assert_eq!(rows[0].get("run_ms").and_then(Json::as_u64), Some(5));
        assert!(
            matches!(rows[0].get("reuse"), Some(Json::Null)),
            "no incremental context → explicit null"
        );
        let sched = j.get("scheduler").expect("scheduler object");
        assert_eq!(sched.get("steals").and_then(Json::as_u64), Some(2));
        assert_eq!(sched.get("max_queue_depth").and_then(Json::as_u64), Some(1));
        let metrics = j.get("metrics").expect("metrics object");
        assert!(metrics.get("counters").is_some());
    }

    #[test]
    fn reuse_counts_serialize_when_present() {
        let mut r = row(Verdict::Deterministic, false);
        r.reuse = Some(ReuseCounts {
            resources_clean: 7,
            resources_dirty: 1,
            pairs_reused: 21,
        });
        let j = row_json(&r);
        let reuse = j.get("reuse").expect("reuse object");
        assert_eq!(reuse.get("resources_clean").and_then(Json::as_u64), Some(7));
        assert_eq!(reuse.get("resources_dirty").and_then(Json::as_u64), Some(1));
        assert_eq!(reuse.get("pairs_reused").and_then(Json::as_u64), Some(21));
    }

    #[test]
    fn table_header_echoes_worker_count() {
        let report = FleetReport {
            rows: vec![row(Verdict::Deterministic, false)],
            wall_millis: 7,
            jobs: 6,
            threads: 2,
            steals: 0,
            max_queue_depth: 1,
            metrics: rehearsal_trace::MetricsSnapshot::default(),
        };
        assert!(report
            .render_table()
            .starts_with("workers: 6 × 2 explorer thread(s)\n"));
    }

    #[test]
    fn grounding_reuse_ratio_bounds() {
        let mut c = AnalysisCounters::default();
        assert_eq!(c.grounding_reuse_ratio(), 0.0, "no grounding yet");
        c.grounded_nodes = 25;
        c.grounded_reused = 75;
        assert!((c.grounding_reuse_ratio() - 0.75).abs() < 1e-9);
    }
}
