//! The shared persistent-state handle: one verdict cache plus one
//! optional baseline store behind interior locks.
//!
//! Before this module the CLI opened the `--cache` and `--baseline`
//! files per `run()` and saved them ad hoc afterwards, and nothing
//! stopped two engines (or a daemon's concurrent requests) from
//! interleaving writes to the same files. A [`StateDir`] is opened
//! *once*, shared by reference ([`std::sync::Arc`]) between any number
//! of [`crate::FleetEngine`]s and server worker threads, and flushed in
//! one place — explicitly via [`StateDir::flush`], and as a backstop on
//! drop. Both stores already rewrite their files wholesale on save, so
//! single-writer flushing through one handle is what makes the on-disk
//! state torn-write-free.

use crate::baseline::{BaselineEntry, BaselineStore};
use crate::cache::{CachedVerdict, VerdictCache};
use crate::report::Verdict;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// File name of the verdict cache inside a state directory.
pub const STATE_CACHE_FILE: &str = "verdicts.jsonl";
/// File name of the baseline store inside a state directory.
pub const STATE_BASELINE_FILE: &str = "baseline.jsonl";

/// The open-once, flush-on-drop handle to a run's persistent state: the
/// schema-5 verdict cache and (optionally) the differential baseline.
/// All accessors take `&self`; a `Mutex` per store serializes concurrent
/// engines, so requests sharing one handle never interleave writes.
#[derive(Debug, Default)]
pub struct StateDir {
    cache: Mutex<VerdictCache>,
    baseline: Mutex<Option<BaselineStore>>,
}

impl StateDir {
    /// A fully in-memory handle: empty cache, no baseline, no backing
    /// files (every flush is a no-op).
    pub fn in_memory() -> StateDir {
        StateDir::default()
    }

    /// Opens (or initializes) a state directory holding
    /// [`STATE_CACHE_FILE`] and [`STATE_BASELINE_FILE`]. The directory is
    /// created if missing; corrupt or stale-schema lines in either file
    /// are skipped, exactly as when the files are opened individually.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation or file reads.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StateDir> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let state = StateDir::in_memory();
        state.set_cache(VerdictCache::open(dir.join(STATE_CACHE_FILE))?);
        state.set_baseline(BaselineStore::open(dir.join(STATE_BASELINE_FILE))?);
        Ok(state)
    }

    /// Replaces the verdict cache (e.g. one opened from an explicit
    /// `--cache FILE` path).
    pub fn set_cache(&self, cache: VerdictCache) {
        *self.cache.lock().expect("cache lock") = cache;
    }

    /// Attaches (or replaces) the baseline store.
    pub fn set_baseline(&self, baseline: BaselineStore) {
        *self.baseline.lock().expect("baseline lock") = Some(baseline);
    }

    /// Detaches and returns the baseline store, leaving none attached.
    pub fn take_baseline(&self) -> Option<BaselineStore> {
        self.baseline.lock().expect("baseline lock").take()
    }

    /// Whether a baseline store is attached.
    pub fn has_baseline(&self) -> bool {
        self.baseline.lock().expect("baseline lock").is_some()
    }

    /// Number of verdict-cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Looks a verdict-cache key up (cloning the entry out of the lock).
    pub fn cache_get(&self, key: u64) -> Option<CachedVerdict> {
        self.cache.lock().expect("cache lock").get(key).cloned()
    }

    /// Records a verdict under `key` (timeouts are dropped, as always).
    pub fn cache_put(&self, key: u64, verdict: CachedVerdict) {
        self.cache.lock().expect("cache lock").put(key, verdict);
    }

    /// Number of baseline entries (0 when no store is attached).
    pub fn baseline_len(&self) -> usize {
        self.baseline
            .lock()
            .expect("baseline lock")
            .as_ref()
            .map_or(0, BaselineStore::len)
    }

    /// The baseline entry for `(manifest, options fingerprint)`, cloned
    /// out of the lock; `None` when absent or no store is attached.
    pub fn baseline_get(&self, manifest: &str, options_fp: u64) -> Option<BaselineEntry> {
        self.baseline
            .lock()
            .expect("baseline lock")
            .as_ref()
            .and_then(|s| s.get(manifest, options_fp).cloned())
    }

    /// Any baseline entry with this graph digest under this fingerprint
    /// (the rename-proof fallback), cloned out of the lock.
    pub fn baseline_find_by_digest(
        &self,
        graph_digest: u64,
        options_fp: u64,
    ) -> Option<BaselineEntry> {
        self.baseline
            .lock()
            .expect("baseline lock")
            .as_ref()
            .and_then(|s| s.find_by_digest(graph_digest, options_fp).cloned())
    }

    /// The replay lookup the engine uses: the entry for this manifest if
    /// its digest matches, else any entry with the digest (a rename).
    pub fn baseline_replay(
        &self,
        manifest: &str,
        options_fp: u64,
        graph_digest: u64,
    ) -> Option<BaselineEntry> {
        let guard = self.baseline.lock().expect("baseline lock");
        let store = guard.as_ref()?;
        store
            .get(manifest, options_fp)
            .filter(|e| e.graph_digest == graph_digest)
            .or_else(|| store.find_by_digest(graph_digest, options_fp))
            .cloned()
    }

    /// Records (or replaces) a baseline entry. A no-op when no store is
    /// attached, so engines can record unconditionally.
    pub fn baseline_put(&self, entry: BaselineEntry) {
        if let Some(store) = self.baseline.lock().expect("baseline lock").as_mut() {
            store.put(entry);
        }
    }

    /// The `(manifest, graph digest, verdict)` triples pinned under this
    /// options fingerprint — the comparison set for coverage/drift
    /// rollups, snapshotted *before* later runs re-record entries.
    pub fn baseline_pins(&self, options_fp: u64) -> Vec<(String, u64, Verdict)> {
        self.baseline
            .lock()
            .expect("baseline lock")
            .as_ref()
            .map(|store| {
                let mut pins: Vec<(String, u64, Verdict)> = store
                    .entries()
                    .filter(|e| e.options == options_fp)
                    .map(|e| (e.manifest.clone(), e.graph_digest, e.verdict.clone()))
                    .collect();
                pins.sort_by(|a, b| a.0.cmp(&b.0));
                pins
            })
            .unwrap_or_default()
    }

    /// Writes both stores back to their backing files (no-ops for
    /// in-memory stores or when nothing changed).
    ///
    /// # Errors
    ///
    /// I/O errors from either save.
    pub fn flush(&self) -> io::Result<()> {
        self.cache.lock().expect("cache lock").save()?;
        if let Some(store) = self.baseline.lock().expect("baseline lock").as_mut() {
            store.save()?;
        }
        Ok(())
    }
}

impl Drop for StateDir {
    /// Backstop flush: explicit [`StateDir::flush`] is the place errors
    /// surface; the drop exists so a forgotten save still persists.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(label: &str) -> CachedVerdict {
        CachedVerdict {
            verdict: Verdict::from_label(label).unwrap(),
            detail: String::new(),
            resources: 1,
            diagnostics: Vec::new(),
        }
    }

    #[test]
    fn open_creates_the_directory_and_round_trips() {
        let dir = std::env::temp_dir().join("rehearsal-statedir-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let state = StateDir::open(&dir).unwrap();
            state.cache_put(7, verdict("deterministic"));
            state.flush().unwrap();
        }
        assert!(dir.join(STATE_CACHE_FILE).exists());
        let reloaded = StateDir::open(&dir).unwrap();
        assert_eq!(reloaded.cache_len(), 1);
        assert!(reloaded.cache_get(7).is_some());
        assert!(
            reloaded.has_baseline(),
            "state dirs always carry a baseline"
        );
    }

    #[test]
    fn drop_flushes_as_a_backstop() {
        let dir = std::env::temp_dir().join("rehearsal-statedir-dropflush");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let state = StateDir::open(&dir).unwrap();
            state.cache_put(9, verdict("nondeterministic"));
            // No explicit flush: Drop persists it.
        }
        let reloaded = StateDir::open(&dir).unwrap();
        assert!(reloaded.cache_get(9).is_some());
    }

    #[test]
    fn in_memory_has_no_baseline_until_attached() {
        let state = StateDir::in_memory();
        assert!(!state.has_baseline());
        assert_eq!(state.baseline_len(), 0);
        state.baseline_put(BaselineEntry {
            manifest: "dropped.pp".to_string(),
            platform: rehearsal_pkgdb::Platform::Ubuntu,
            options: 1,
            graph_digest: 2,
            resources: Vec::new(),
            edges: Vec::new(),
            pairs: Vec::new(),
            pruned: Vec::new(),
            verdict: Verdict::Deterministic,
            detail: String::new(),
            diagnostics: Vec::new(),
        });
        assert_eq!(state.baseline_len(), 0, "puts without a store are no-ops");
        state.set_baseline(BaselineStore::in_memory());
        assert!(state.has_baseline());
    }
}
