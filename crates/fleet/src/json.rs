//! A minimal JSON value model with a serializer and parser.
//!
//! The fleet report, the verdict cache, and the CLI's `--json` modes all
//! need machine-readable output, and the build environment is offline, so
//! this module stands in for `serde_json`. Objects preserve insertion
//! order, which keeps rendered reports stable across runs.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with stable key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from any integer.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation, for human-adjacent output.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, level: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, level + 1);
                    item.write_pretty(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, level + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- diagnostics (the documented machine encoding of rehearsal-diag) ----

use rehearsal_diag::{Diagnostic, Label, Pos, Severity, Span};

fn pos_json(p: Pos) -> Json {
    Json::obj([("line", Json::num(p.line)), ("col", Json::num(p.col))])
}

fn pos_from_json(j: &Json) -> Option<Pos> {
    Some(Pos::new(
        j.get("line")?.as_u64()? as u32,
        j.get("col")?.as_u64()? as u32,
    ))
}

fn span_json(s: Span) -> Json {
    if s.is_dummy() {
        return Json::Null;
    }
    Json::obj([("lo", pos_json(s.lo)), ("hi", pos_json(s.hi))])
}

fn span_from_json(j: &Json) -> Option<Span> {
    match j {
        Json::Null => Some(Span::DUMMY),
        _ => Some(Span::new(
            pos_from_json(j.get("lo")?)?,
            pos_from_json(j.get("hi")?)?,
        )),
    }
}

fn label_json(l: &Label) -> Json {
    Json::obj([
        ("span", span_json(l.span)),
        ("message", Json::str(&l.message)),
    ])
}

fn label_from_json(j: &Json) -> Option<Label> {
    Some(Label::new(
        span_from_json(j.get("span")?)?,
        j.get("message")?.as_str()?,
    ))
}

/// Serializes one [`Diagnostic`] into the stable JSON encoding used by
/// `check --json` (schema `rehearsal-check/5`), fleet report rows, the
/// verdict cache, and `--error-format json`:
///
/// ```json
/// {"severity": "error", "code": "R3001", "message": "…",
///  "primary": {"span": {"lo": {"line": 1, "col": 1},
///                       "hi": {"line": 1, "col": 8}}, "message": "…"},
///  "secondary": [ … ], "notes": ["…"], "payload": {"key": "value"}}
/// ```
pub fn diagnostic_json(d: &Diagnostic) -> Json {
    Json::obj([
        ("severity", Json::str(d.severity.label())),
        ("code", Json::str(&d.code)),
        ("message", Json::str(&d.message)),
        (
            "primary",
            match &d.primary {
                Some(l) => label_json(l),
                None => Json::Null,
            },
        ),
        (
            "secondary",
            Json::Arr(d.secondary.iter().map(label_json).collect()),
        ),
        ("notes", Json::Arr(d.notes.iter().map(Json::str).collect())),
        (
            "payload",
            Json::Obj(
                d.payload
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::str(v)))
                    .collect(),
            ),
        ),
    ])
}

/// Parses a [`diagnostic_json`] document back (the round-trip inverse).
pub fn diagnostic_from_json(j: &Json) -> Option<Diagnostic> {
    let severity = Severity::from_label(j.get("severity")?.as_str()?)?;
    let mut d = Diagnostic::new(
        severity,
        j.get("code")?.as_str()?,
        j.get("message")?.as_str()?,
    );
    match j.get("primary")? {
        Json::Null => {}
        p => {
            let l = label_from_json(p)?;
            d = d.with_primary(l.span, l.message);
        }
    }
    for l in j.get("secondary")?.as_arr()? {
        let l = label_from_json(l)?;
        d = d.with_secondary(l.span, l.message);
    }
    for n in j.get("notes")?.as_arr()? {
        d = d.with_note(n.as_str()?);
    }
    if let Some(Json::Obj(pairs)) = j.get("payload") {
        for (k, v) in pairs {
            d = d.with_payload(k.clone(), v.as_str()?);
        }
    }
    Some(d)
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined; cache lines never
                            // contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num(42u32),
            Json::Num(-1.5),
            Json::str("hi \"there\"\nline"),
        ] {
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("name", Json::str("fleet")),
            ("counts", Json::Arr(vec![Json::num(1u32), Json::num(2u32)])),
            (
                "inner",
                Json::obj([("ok", Json::Bool(true)), ("detail", Json::Null)]),
            ),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn object_accessors() {
        let v = Json::obj([("n", Json::num(7u32)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::num(13u32).render(), "13");
        assert_eq!(Json::Num(1.25).render(), "1.25");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("123 trailing").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::str("path → vérité");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn diagnostics_roundtrip_through_json() {
        let d = Diagnostic::error("R3001", "two resources race")
            .with_primary(
                Span::new(Pos::new(3, 1), Pos::new(3, 40)),
                "this resource races",
            )
            .with_secondary(Span::new(Pos::new(7, 1), Pos::new(7, 36)), "the other one")
            .with_note("order A succeeds, order B errors")
            .with_payload("resource_a", "File[/etc/ntp.conf]")
            .with_payload("resource_b", "Package[ntp]");
        let j = diagnostic_json(&d);
        let back = diagnostic_from_json(&j).expect("decodes");
        assert_eq!(back.code, d.code);
        assert_eq!(back.message, d.message);
        assert_eq!(back.severity, d.severity);
        assert!(back.primary.as_ref().unwrap().span.same(&d.span()));
        assert_eq!(back.secondary.len(), 1);
        assert_eq!(back.notes, d.notes);
        assert_eq!(back.payload, d.payload);
        // And through the *text* encoding too.
        let text = j.render();
        let back2 = diagnostic_from_json(&parse(&text).unwrap()).unwrap();
        assert!(back2.span().same(&d.span()));
    }

    #[test]
    fn dummy_spans_encode_as_null() {
        let d = Diagnostic::warning("R1101", "modeling note");
        let j = diagnostic_json(&d);
        assert_eq!(j.get("primary"), Some(&Json::Null));
        let back = diagnostic_from_json(&j).unwrap();
        assert!(back.primary.is_none());
    }
}
