//! The resource compiler `C : R → e` (paper §3.3): models each primitive
//! Puppet resource as an FS program.
//!
//! The models validate attributes, fill in defaults, and emit programs that
//! check their preconditions before acting, so that each resource is
//! individually idempotent (the paper's observation that "resources are
//! mostly idempotent" is what makes the commutativity check of §4.3
//! effective).

use crate::error::{CompileError, CompileErrorKind};
use crate::helpers::{
    create_if_absent, ensure_dir, ensure_parent_dirs, overwrite, remove_file_if_present,
};
use rehearsal_diag::{codes, Diagnostic};
use rehearsal_fs::{Content, Expr, FsPath, MetaField, Pred};
use rehearsal_pkgdb::{PackageDb, PackageSpec};
use rehearsal_puppet::{CatalogResource, Value};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// The resource types this compiler models.
///
/// `exec` is deliberately absent (paper §8); `notify` is modeled as a
/// no-op.
pub const SUPPORTED_TYPES: &[&str] = &[
    "file",
    "package",
    "user",
    "group",
    "ssh_authorized_key",
    "service",
    "cron",
    "host",
    "notify",
];

/// Compilation context: the package database (which also fixes the
/// platform) and modeling options.
#[derive(Debug, Clone)]
pub struct CompileCtx<'a> {
    db: &'a PackageDb,
    /// When true, package resources install/remove their full dependency
    /// closure (mirroring `apt`), enabling detection of cross-package
    /// inconsistencies like the paper's golang-go/perl example (fig. 3c).
    /// Off by default: the original Rehearsal does not consume dependency
    /// metadata (paper §8 lists this as future work).
    dependency_closures: bool,
    /// When true, `owner`/`group`/`mode` attributes compile to
    /// `chown`/`chgrp`/`chmod` steps (and `user` resources own their home
    /// directories) instead of being silently dropped — the metadata-aware
    /// FS model. Off by default so unannotated pipelines keep
    /// bit-identical verdicts.
    model_metadata: bool,
    /// When true, `package { ensure => latest }` is modeled distinctly
    /// from `present` (the upgrade re-overwrites package files with
    /// version-bumped content) instead of silently aliasing to the
    /// idempotent install. Off by default; either way a diagnostic is
    /// recorded when a `latest` is encountered.
    model_latest: bool,
    /// Non-fatal modeling diagnostics accumulated during compilation
    /// (shared across clones so per-resource compiles all feed one list).
    diagnostics: Arc<Mutex<Vec<Diagnostic>>>,
}

impl<'a> CompileCtx<'a> {
    /// Creates a context over a package database.
    pub fn new(db: &'a PackageDb) -> CompileCtx<'a> {
        CompileCtx {
            db,
            dependency_closures: false,
            model_metadata: false,
            model_latest: false,
            diagnostics: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Enables or disables dependency-closure modeling (see the field
    /// documentation).
    #[must_use]
    pub fn with_dependency_closures(mut self, on: bool) -> CompileCtx<'a> {
        self.dependency_closures = on;
        self
    }

    /// Enables or disables the metadata-aware model (see the field
    /// documentation).
    #[must_use]
    pub fn with_model_metadata(mut self, on: bool) -> CompileCtx<'a> {
        self.model_metadata = on;
        self
    }

    /// Enables or disables distinct `ensure => latest` modeling (see the
    /// field documentation).
    #[must_use]
    pub fn with_model_latest(mut self, on: bool) -> CompileCtx<'a> {
        self.model_latest = on;
        self
    }

    /// Whether the metadata-aware model is on.
    pub fn models_metadata(&self) -> bool {
        self.model_metadata
    }

    /// The package database.
    pub fn db(&self) -> &PackageDb {
        self.db
    }

    /// Records a non-fatal modeling diagnostic.
    fn diag(&self, d: Diagnostic) {
        self.diagnostics.lock().expect("diagnostics lock").push(d);
    }

    /// Drains the structured diagnostics accumulated so far (warnings and
    /// notes with stable codes and source spans).
    pub fn drain_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.diagnostics.lock().expect("diagnostics lock"))
    }
}

/// Compiles one catalog resource into an FS program.
///
/// # Errors
///
/// Returns [`CompileError`] for unmodeled types (including `exec`),
/// missing/invalid attributes, bad paths, and unknown packages.
///
/// # Examples
///
/// ```
/// use rehearsal_pkgdb::{PackageDb, Platform};
/// use rehearsal_puppet::CatalogResource;
/// use rehearsal_resources::{compile, CompileCtx};
/// use std::collections::BTreeMap;
///
/// let db = PackageDb::builtin(Platform::Ubuntu);
/// let ctx = CompileCtx::new(&db);
/// let mut attrs = BTreeMap::new();
/// attrs.insert("content".to_string(), rehearsal_puppet::Value::Str("x".into()));
/// let r = CatalogResource::new("file", "/etc/motd", attrs);
/// let program = compile(&r, &ctx)?;
/// assert!(program.paths().iter().any(|p| p.to_string() == "/etc/motd"));
/// # Ok::<(), rehearsal_resources::CompileError>(())
/// ```
pub fn compile(resource: &CatalogResource, ctx: &CompileCtx<'_>) -> Result<Expr, CompileError> {
    let _span = rehearsal_trace::span_cat("compile", "resources");
    rehearsal_trace::counter_add("compile.resources", 1);
    // Anchor every error into the resource's declaration (or the precise
    // offending attribute) before it leaves the compiler.
    compile_inner(resource, ctx).map_err(|e| e.anchored(resource))
}

fn compile_inner(resource: &CatalogResource, ctx: &CompileCtx<'_>) -> Result<Expr, CompileError> {
    match resource.type_name() {
        "file" => compile_file(resource, ctx),
        "package" => compile_package(resource, ctx),
        "user" => compile_user(resource, ctx),
        "group" => compile_group(resource),
        "ssh_authorized_key" => compile_ssh_key(resource),
        "service" => compile_service(resource),
        "cron" => compile_cron(resource),
        "host" => compile_host(resource),
        "notify" => compile_notify(resource),
        "exec" => Err(CompileError::new(CompileErrorKind::ExecUnsupported(
            resource.title().to_string(),
        ))),
        other => Err(CompileError::new(CompileErrorKind::UnknownResourceType(
            other.to_string(),
        ))),
    }
}

// ---- attribute plumbing ----

struct Attrs<'a> {
    resource: &'a CatalogResource,
    /// Attributes consumed so far, for final unknown-attribute validation.
    used: BTreeSet<&'static str>,
}

impl<'a> Attrs<'a> {
    fn new(resource: &'a CatalogResource) -> Attrs<'a> {
        Attrs {
            resource,
            used: BTreeSet::new(),
        }
    }

    fn display(&self) -> String {
        self.resource.display_name()
    }

    fn opt_str(&mut self, name: &'static str) -> Option<String> {
        self.used.insert(name);
        self.resource.attr(name).map(Value::coerce_string)
    }

    fn str_or(&mut self, name: &'static str, default: &str) -> String {
        self.opt_str(name).unwrap_or_else(|| default.to_string())
    }

    fn required_str(&mut self, name: &'static str) -> Result<String, CompileError> {
        self.opt_str(name).ok_or_else(|| {
            CompileError::new(CompileErrorKind::MissingAttribute {
                resource: self.display(),
                attribute: name.to_string(),
            })
        })
    }

    fn bool_or(&mut self, name: &'static str, default: bool) -> Result<bool, CompileError> {
        self.used.insert(name);
        match self.resource.attr(name) {
            None => Ok(default),
            Some(Value::Bool(b)) => Ok(*b),
            Some(Value::Str(s)) if s.eq_ignore_ascii_case("true") => Ok(true),
            Some(Value::Str(s)) if s.eq_ignore_ascii_case("false") => Ok(false),
            Some(other) => Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: self.display(),
                attribute: name.to_string(),
                reason: format!("expected a boolean, got {other}"),
            })),
        }
    }

    fn ignore(&mut self, names: &[&'static str]) {
        for n in names {
            self.used.insert(n);
        }
    }

    /// Rejects attributes nothing consumed or ignored. Universal
    /// metaparameters that don't affect the filesystem model are always
    /// allowed.
    fn finish(mut self) -> Result<(), CompileError> {
        self.ignore(&["alias", "loglevel", "noop", "schedule", "tag", "audit"]);
        for name in self.resource.attrs().keys() {
            if !self.used.contains(name.as_str()) {
                return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                    resource: self.resource.display_name(),
                    attribute: name.clone(),
                    reason: "unknown attribute for this resource type".to_string(),
                }));
            }
        }
        Ok(())
    }
}

fn parse_path(resource: &CatalogResource, text: &str) -> Result<FsPath, CompileError> {
    FsPath::parse(text).map_err(|e| {
        CompileError::new(CompileErrorKind::BadPath {
            resource: resource.display_name(),
            path: text.to_string(),
            reason: e.to_string(),
        })
    })
}

/// Validates that a title can be used as a single path component.
fn path_component(resource: &CatalogResource, text: &str) -> Result<String, CompileError> {
    if text.is_empty() || text.contains('/') {
        return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
            resource: resource.display_name(),
            attribute: "title".to_string(),
            reason: format!("{text:?} cannot be used as a path component"),
        }));
    }
    Ok(text.to_string())
}

// ---- file ----

/// The `chown`/`chgrp`/`chmod` steps for the `owner`/`group`/`mode`
/// attributes of a resource managing `path`. Empty when the metadata model
/// is off (the attributes are then accepted-and-ignored, as the seed did).
fn meta_steps(
    attrs: &mut Attrs<'_>,
    ctx: &CompileCtx<'_>,
    path: FsPath,
) -> Result<Vec<Expr>, CompileError> {
    let mut steps = Vec::new();
    for (name, field) in [
        ("owner", MetaField::Owner),
        ("group", MetaField::Group),
        ("mode", MetaField::Mode),
    ] {
        if let Some(value) = attrs.opt_str(name) {
            // With the model off the attribute is consumed and ignored,
            // exactly as the seed did — including values the model would
            // reject, so metadata-off pipelines stay bit-identical.
            if !ctx.models_metadata() {
                continue;
            }
            if value.is_empty() {
                return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                    resource: attrs.display(),
                    attribute: name.to_string(),
                    reason: "empty metadata value".to_string(),
                }));
            }
            steps.push(Expr::chmeta(path, field, Content::intern(&value)));
        }
    }
    Ok(steps)
}

fn compile_file(resource: &CatalogResource, ctx: &CompileCtx<'_>) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&[
        "backup", "checksum", "recurse", "purge", "selrange", "seltype",
    ]);
    let path_text = attrs.str_or("path", resource.title());
    let path = parse_path(resource, &path_text)?;
    let content = attrs.opt_str("content");
    let source = attrs.opt_str("source");
    let force = attrs.bool_or("force", false)?;
    let replace = attrs.bool_or("replace", true)?;
    let ensure = attrs.str_or("ensure", "file");
    // Metadata attributes apply to the managed path itself; for
    // `ensure => absent` they are meaningless and stay ignored.
    let meta = if ensure == "absent" {
        attrs.ignore(&["owner", "group", "mode"]);
        Vec::new()
    } else {
        meta_steps(&mut attrs, ctx, path)?
    };
    if content.is_some() && source.is_some() {
        return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
            resource: resource.display_name(),
            attribute: "content".to_string(),
            reason: "content and source are mutually exclusive".to_string(),
        }));
    }

    let expr = match ensure.as_str() {
        "file" | "present" => {
            if let Some(src_text) = &source {
                let src = parse_path(resource, src_text)?;
                // Copy, overwriting an existing destination file.
                let copy = Expr::cp(src, path);
                let recopy = Expr::rm(path).seq(Expr::cp(src, path));
                if replace {
                    Expr::if_(
                        Pred::does_not_exist(path),
                        copy,
                        Expr::if_(Pred::is_file(path), recopy, Expr::ERROR),
                    )
                } else {
                    Expr::if_(
                        Pred::does_not_exist(path),
                        copy,
                        Expr::if_(Pred::is_file(path), Expr::SKIP, Expr::ERROR),
                    )
                }
            } else {
                let c = Content::intern(&content.unwrap_or_default());
                if replace {
                    overwrite(path, c)
                } else {
                    create_if_absent(path, c)
                }
            }
        }
        "directory" => {
            let make = Expr::mkdir(path);
            let on_file = if force {
                Expr::rm(path).seq(Expr::mkdir(path))
            } else {
                Expr::ERROR
            };
            Expr::if_(
                Pred::does_not_exist(path),
                make,
                Expr::if_(Pred::is_dir(path), Expr::SKIP, on_file),
            )
        }
        "absent" => Expr::if_(
            Pred::does_not_exist(path),
            Expr::SKIP,
            Expr::if_(
                Pred::is_file(path),
                Expr::rm(path),
                if force {
                    // rm still errors on a non-empty directory — FS has no
                    // recursive delete, which keeps the model conservative.
                    Expr::rm(path)
                } else {
                    Expr::ERROR
                },
            ),
        ),
        "link" => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: "symlinks are not modeled (Puppet hides platform link semantics)"
                    .to_string(),
            }))
        }
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    // Metadata management follows the content/existence step: once the
    // path is ensured present, its fields are pinned — which is exactly
    // what makes two resources with different modes a last-write-wins
    // race the explorer can observe.
    Ok(expr.seq(Expr::seq_all(meta)))
}

// ---- package ----

fn package_file_content(pkg: &str, path: FsPath) -> Content {
    // Every file in a package gets a unique content (paper §3.3): sound but
    // conservative.
    Content::intern(&format!("pkg:{pkg}:{path}"))
}

/// The FS program that installs one package: guarded mkdir for the
/// directory tree, then an idempotent, definitive write of each file.
///
/// The paper describes "a sequence of creat(p, str) commands"; we use the
/// overwrite idiom so the program is individually idempotent, which the
/// paper's own idempotence results (fig. 12) presuppose for package
/// resources.
fn install_one(spec: &PackageSpec) -> Expr {
    let mut steps = Vec::new();
    for d in spec.directories() {
        steps.push(ensure_dir(d));
    }
    for &f in spec.files() {
        steps.push(overwrite(f, package_file_content(spec.name(), f)));
    }
    Expr::seq_all(steps)
}

/// The FS program for `ensure => latest`: like [`install_one`], but every
/// file is re-overwritten with *version-bumped* content. An upgrade is a
/// definitive write of the new version's payload, so a `latest` package
/// racing a resource that pinned one of its files (or a `present` install
/// of the same payload) is a detectable conflict — whereas aliasing
/// `latest` to `present` made the upgrade invisible.
fn upgrade_one(spec: &PackageSpec) -> Expr {
    let mut steps = Vec::new();
    for d in spec.directories() {
        steps.push(ensure_dir(d));
    }
    for &f in spec.files() {
        let c = Content::intern(&format!("pkg:{}:{f}@latest", spec.name()));
        steps.push(overwrite(f, c));
    }
    Expr::seq_all(steps)
}

/// The FS program that removes one package: removes each of its files if
/// present. Directories are left behind, as real package managers do.
fn remove_one(spec: &PackageSpec) -> Expr {
    Expr::seq_all(spec.files().iter().map(|&f| remove_file_if_present(f)))
}

fn compile_package(resource: &CatalogResource, ctx: &CompileCtx<'_>) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&["provider", "source", "responsefile", "install_options"]);
    let name = attrs.str_or("name", resource.title());
    let ensure = attrs.str_or("ensure", "present");
    let expr = match ensure.as_str() {
        "present" | "installed" | "latest" => {
            let latest = ensure == "latest";
            if latest {
                let span = resource.attr_span("ensure");
                ctx.diag(if ctx.model_latest {
                    Diagnostic::note(
                        codes::LATEST_MODELING,
                        format!(
                            "{}: ensure => latest modeled as a version-bumping \
                             re-overwrite of the package's files",
                            resource.display_name()
                        ),
                    )
                    .with_primary(span, "declared here")
                } else {
                    Diagnostic::warning(
                        codes::LATEST_MODELING,
                        format!(
                            "{}: ensure => latest treated as ensure => present \
                             (version bumps are not modeled; enable distinct \
                             `latest` modeling to track the upgrade overwrite)",
                            resource.display_name()
                        ),
                    )
                    .with_primary(span, "declared here")
                    .with_note("run with --model-latest to model the upgrade distinctly")
                });
            }
            let specs: Vec<&PackageSpec> = if ctx.dependency_closures {
                let mut closure = ctx.db.install_closure(&name)?;
                // Dependencies first (apt resolves leaf-first).
                closure.reverse();
                closure
            } else {
                vec![ctx.db.package(&name)?]
            };
            if latest && ctx.model_latest {
                Expr::seq_all(specs.into_iter().map(upgrade_one))
            } else {
                Expr::seq_all(specs.into_iter().map(install_one))
            }
        }
        "absent" | "purged" => {
            let specs: Vec<&PackageSpec> = if ctx.dependency_closures {
                // Reverse-dependents first (apt removes dependents first).
                let mut closure = ctx.db.remove_closure(&name)?;
                closure.reverse();
                closure
            } else {
                vec![ctx.db.package(&name)?]
            };
            Expr::seq_all(specs.into_iter().map(remove_one))
        }
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

// ---- user / group ----

fn users_dir() -> FsPath {
    FsPath::parse("/etc/users").expect("static path")
}

fn compile_user(resource: &CatalogResource, ctx: &CompileCtx<'_>) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&["password", "comment", "groups", "expiry"]);
    let name = path_component(resource, resource.title())?;
    let ensure = attrs.str_or("ensure", "present");
    let managehome = attrs.bool_or("managehome", false)?;
    let home_text = attrs.str_or("home", &format!("/home/{name}"));
    let home = parse_path(resource, &home_text)?;
    let uid = attrs.opt_str("uid").unwrap_or_default();
    let gid = attrs.opt_str("gid").unwrap_or_default();
    let shell = attrs.opt_str("shell").unwrap_or_default();
    let record = users_dir().join(&name);
    let record_content =
        Content::intern(&format!("user:{name}:uid={uid}:shell={shell}:home={home}"));

    let expr = match ensure.as_str() {
        "present" => {
            let mut steps = vec![
                ensure_parent_dirs(record),
                ensure_dir(users_dir()),
                overwrite(record, record_content),
            ];
            if managehome {
                steps.push(ensure_parent_dirs(home));
                steps.push(ensure_dir(home));
                if ctx.models_metadata() {
                    // `useradd -m` chowns the home to the user (and their
                    // primary group): a `file` resource that sets a
                    // different owner on the same directory is now a
                    // visible permission race.
                    steps.push(Expr::chown(home, Content::intern(&name)));
                    let group = if gid.is_empty() { &name } else { &gid };
                    steps.push(Expr::chgrp(home, Content::intern(group)));
                }
            }
            Expr::seq_all(steps)
        }
        "absent" => {
            // Puppet does not remove the home directory unless told to
            // manage it; even then our model conservatively leaves it (FS
            // has no recursive delete).
            Expr::seq_all(vec![
                ensure_parent_dirs(record),
                ensure_dir(users_dir()),
                remove_file_if_present(record),
            ])
        }
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

fn groups_dir() -> FsPath {
    FsPath::parse("/etc/groups").expect("static path")
}

fn compile_group(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    let name = path_component(resource, resource.title())?;
    let ensure = attrs.str_or("ensure", "present");
    let gid = attrs.opt_str("gid").unwrap_or_default();
    let record = groups_dir().join(&name);
    let content = Content::intern(&format!("group:{name}:gid={gid}"));
    let expr = match ensure.as_str() {
        "present" => Expr::seq_all(vec![
            ensure_parent_dirs(record),
            ensure_dir(groups_dir()),
            overwrite(record, content),
        ]),
        "absent" => Expr::seq_all(vec![
            ensure_parent_dirs(record),
            ensure_dir(groups_dir()),
            remove_file_if_present(record),
        ]),
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

// ---- ssh_authorized_key ----

fn compile_ssh_key(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&["options", "target"]);
    let title = path_component(resource, resource.title())?;
    let user = attrs.required_str("user")?;
    let user = path_component(resource, &user)?;
    let key = attrs.opt_str("key").unwrap_or_default();
    let key_type = attrs.str_or("type", "ssh-rsa");
    let ensure = attrs.str_or("ensure", "present");

    // The logical structure of authorized_keys lives in a disjoint subtree
    // (paper §3.3): one file per key.
    let logical_dir = FsPath::parse("/ssh_keys").expect("static path").join(&user);
    let logical = logical_dir.join(&title);
    let logical_content = Content::intern(&format!("sshkey:{user}:{title}:{key_type}:{key}"));

    // And the model *also* writes the real key-file with a content unique to
    // the user, so a `file` resource clobbering it is caught as a
    // determinacy bug — while two keys for the same user still agree.
    let home = FsPath::parse("/home").expect("static path").join(&user);
    let ssh_dir = home.join(".ssh");
    let keyfile = ssh_dir.join("authorized_keys");
    let keyfile_content = Content::intern(&format!("authorized_keys:{user}"));

    let expr = match ensure.as_str() {
        "present" => Expr::seq_all(vec![
            ensure_parent_dirs(logical),
            ensure_dir(logical_dir),
            overwrite(logical, logical_content),
            // ensure_dir(ssh_dir) errors unless the user's home directory
            // already exists — which is how a missing `User → Ssh key`
            // dependency manifests (one of the paper's found bugs).
            ensure_dir(ssh_dir),
            overwrite(keyfile, keyfile_content),
        ]),
        "absent" => Expr::seq_all(vec![
            ensure_parent_dirs(logical),
            ensure_dir(logical_dir),
            remove_file_if_present(logical),
        ]),
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

// ---- service ----

fn compile_service(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&[
        "hasrestart",
        "hasstatus",
        "restart",
        "start",
        "stop",
        "status",
        "provider",
    ]);
    let name = path_component(resource, &{
        let n = attrs.str_or("name", resource.title());
        n
    })?;
    let ensure = attrs.str_or("ensure", "running");
    let enable = attrs.bool_or("enable", false)?;

    let init_script = FsPath::parse("/etc/init.d")
        .expect("static path")
        .join(&name);
    let run_dir = FsPath::parse("/var/run/services").expect("static path");
    let run_file = run_dir.join(&name);
    let rc_dir = FsPath::parse("/etc/rc2.d").expect("static path");
    let rc_file = rc_dir.join(&format!("S20{name}"));

    let mut steps = Vec::new();
    match ensure.as_str() {
        "running" | "true" => {
            // A running service needs its init script, which its package
            // provides — omitting the package→service dependency is a
            // classic determinacy bug (paper §2.2).
            steps.push(Expr::if_(
                Pred::is_file(init_script),
                Expr::SKIP,
                Expr::ERROR,
            ));
            steps.push(ensure_parent_dirs(run_file));
            steps.push(ensure_dir(run_dir));
            steps.push(overwrite(
                run_file,
                Content::intern(&format!("service:{name}:running")),
            ));
        }
        "stopped" | "false" => {
            steps.push(ensure_parent_dirs(run_file));
            steps.push(ensure_dir(run_dir));
            steps.push(remove_file_if_present(run_file));
        }
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    }
    if enable {
        steps.push(Expr::if_(
            Pred::is_file(init_script),
            Expr::SKIP,
            Expr::ERROR,
        ));
        steps.push(ensure_parent_dirs(rc_file));
        steps.push(ensure_dir(rc_dir));
        steps.push(overwrite(
            rc_file,
            Content::intern(&format!("service:{name}:enabled")),
        ));
    }
    attrs.finish()?;
    Ok(Expr::seq_all(steps))
}

// ---- cron ----

fn compile_cron(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    let title = path_component(resource, resource.title())?;
    let command = attrs.required_str("command")?;
    let user = attrs.str_or("user", "root");
    let user = path_component(resource, &user)?;
    let minute = attrs.str_or("minute", "*");
    let hour = attrs.str_or("hour", "*");
    let monthday = attrs.str_or("monthday", "*");
    let month = attrs.str_or("month", "*");
    let weekday = attrs.str_or("weekday", "*");
    let ensure = attrs.str_or("ensure", "present");

    let dir = FsPath::parse("/var/spool/cron")
        .expect("static path")
        .join(&user);
    let entry = dir.join(&title);
    let content = Content::intern(&format!(
        "cron:{user}:{title}:{minute} {hour} {monthday} {month} {weekday}:{command}"
    ));
    let expr = match ensure.as_str() {
        "present" => Expr::seq_all(vec![
            ensure_parent_dirs(entry),
            ensure_dir(dir),
            overwrite(entry, content),
        ]),
        "absent" => Expr::seq_all(vec![
            ensure_parent_dirs(entry),
            ensure_dir(dir),
            remove_file_if_present(entry),
        ]),
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

// ---- host ----

fn compile_host(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    let name = path_component(resource, resource.title())?;
    let ensure = attrs.str_or("ensure", "present");
    let ip = if ensure == "present" {
        attrs.required_str("ip")?
    } else {
        attrs.opt_str("ip").unwrap_or_default()
    };
    let aliases = attrs.opt_str("host_aliases").unwrap_or_default();

    // /etc/hosts is line-structured; entries live in a logical subtree and
    // the real file is additionally stamped so file-resource clobbers are
    // caught (same design as ssh keys).
    let entries_dir = FsPath::parse("/hosts_entries").expect("static path");
    let entry = entries_dir.join(&name);
    let entry_content = Content::intern(&format!("host:{name}:{ip}:{aliases}"));
    let etc = FsPath::parse("/etc").expect("static path");
    let hosts_file = etc.join("hosts");
    let hosts_content = Content::intern("managed:/etc/hosts");

    let expr = match ensure.as_str() {
        "present" => Expr::seq_all(vec![
            ensure_dir(entries_dir),
            overwrite(entry, entry_content),
            ensure_dir(etc),
            overwrite(hosts_file, hosts_content),
        ]),
        "absent" => Expr::seq_all(vec![
            ensure_dir(entries_dir),
            remove_file_if_present(entry),
            ensure_dir(etc),
            overwrite(hosts_file, hosts_content),
        ]),
        other => {
            return Err(CompileError::new(CompileErrorKind::InvalidAttribute {
                resource: resource.display_name(),
                attribute: "ensure".to_string(),
                reason: format!("unsupported value {other:?}"),
            }))
        }
    };
    attrs.finish()?;
    Ok(expr)
}

// ---- notify ----

fn compile_notify(resource: &CatalogResource) -> Result<Expr, CompileError> {
    let mut attrs = Attrs::new(resource);
    attrs.ignore(&["message", "withpath"]);
    attrs.finish()?;
    Ok(Expr::SKIP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{eval, FileState, FileSystem};
    use rehearsal_pkgdb::Platform;
    use std::collections::BTreeMap;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn res(t: &str, title: &str, attrs: &[(&str, &str)]) -> CatalogResource {
        let mut map = BTreeMap::new();
        for (k, v) in attrs {
            map.insert(k.to_string(), Value::Str(v.to_string()));
        }
        CatalogResource::new(t, title, map)
    }

    fn compile_one(r: &CatalogResource) -> Expr {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db);
        compile(r, &ctx).unwrap()
    }

    fn compile_with_closures(r: &CatalogResource) -> Expr {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db).with_dependency_closures(true);
        compile(r, &ctx).unwrap()
    }

    fn compile_err(r: &CatalogResource) -> CompileError {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db);
        compile(r, &ctx).unwrap_err()
    }

    #[test]
    fn file_with_content() {
        let e = compile_one(&res("file", "/etc/motd", &[("content", "hi")]));
        let fs = FileSystem::with_root().set(p("/etc"), FileState::DIR);
        let out = eval(e, &fs).unwrap();
        assert_eq!(
            out.get(p("/etc/motd")),
            Some(FileState::file(Content::intern("hi")))
        );
        // Idempotent.
        assert_eq!(eval(e, &out).unwrap(), out);
        // Errors when the parent directory is missing.
        assert!(eval(e, &FileSystem::with_root()).is_err());
    }

    #[test]
    fn file_overwrites_existing() {
        let e = compile_one(&res("file", "/etc/motd", &[("content", "new")]));
        let fs = FileSystem::with_root()
            .set(p("/etc"), FileState::DIR)
            .set(p("/etc/motd"), FileState::file(Content::intern("old")));
        let out = eval(e, &fs).unwrap();
        assert_eq!(
            out.get(p("/etc/motd")),
            Some(FileState::file(Content::intern("new")))
        );
    }

    #[test]
    fn file_replace_false_keeps_existing() {
        let e = compile_one(&res(
            "file",
            "/etc/motd",
            &[("content", "new"), ("replace", "false")],
        ));
        let fs = FileSystem::with_root()
            .set(p("/etc"), FileState::DIR)
            .set(p("/etc/motd"), FileState::file(Content::intern("old")));
        let out = eval(e, &fs).unwrap();
        assert_eq!(
            out.get(p("/etc/motd")),
            Some(FileState::file(Content::intern("old")))
        );
    }

    #[test]
    fn file_directory_and_absent() {
        let mk = compile_one(&res("file", "/srv", &[("ensure", "directory")]));
        let out = eval(mk, &FileSystem::with_root()).unwrap();
        assert!(out.is_dir(p("/srv")));
        assert_eq!(eval(mk, &out).unwrap(), out, "idempotent");

        // Removing a directory requires force (as in Puppet).
        let rm_plain = compile_one(&res("file", "/srv", &[("ensure", "absent")]));
        assert!(eval(rm_plain, &out).is_err(), "needs force for a directory");
        let rm_force = compile_one(&res(
            "file",
            "/srv",
            &[("ensure", "absent"), ("force", "true")],
        ));
        let out2 = eval(rm_force, &out).unwrap();
        assert!(out2.not_exists(p("/srv")));
        assert_eq!(eval(rm_force, &out2).unwrap(), out2, "idempotent");
        // A plain absent on a *file* works without force (paper fig. 3d).
        let file_fs = FileSystem::with_root().set(p("/srv"), FileState::file(Content::intern("x")));
        assert!(eval(rm_plain, &file_fs).unwrap().not_exists(p("/srv")));
    }

    #[test]
    fn file_source_copies() {
        let e = compile_one(&res("file", "/dst", &[("source", "/src")]));
        let fs = FileSystem::with_root().set(p("/src"), FileState::file(Content::intern("data")));
        let out = eval(e, &fs).unwrap();
        assert_eq!(
            out.get(p("/dst")),
            Some(FileState::file(Content::intern("data")))
        );
        // Missing source errors.
        assert!(eval(e, &FileSystem::with_root()).is_err());
    }

    #[test]
    fn file_rejects_content_plus_source() {
        let err = compile_err(&res("file", "/x", &[("content", "a"), ("source", "/s")]));
        assert!(matches!(
            err.kind(),
            CompileErrorKind::InvalidAttribute { .. }
        ));
    }

    #[test]
    fn file_rejects_unknown_attr() {
        let err = compile_err(&res("file", "/x", &[("frobnicate", "yes")]));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn file_rejects_relative_path() {
        let err = compile_err(&res("file", "etc/motd", &[("content", "x")]));
        assert!(matches!(err.kind(), CompileErrorKind::BadPath { .. }));
    }

    #[test]
    fn package_install_creates_own_files() {
        let e = compile_one(&res("package", "vim", &[("ensure", "present")]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/usr/bin/vim")));
        assert!(out.is_file(p("/etc/vim/vimrc")));
        assert!(
            out.not_exists(p("/usr/bin/perl")),
            "no dependency closure by default (paper §8)"
        );
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn package_remove_removes_own_files() {
        let install = compile_one(&res("package", "vim", &[]));
        let remove = compile_one(&res("package", "vim", &[("ensure", "absent")]));
        let installed = eval(install, &FileSystem::with_root()).unwrap();
        let removed = eval(remove, &installed).unwrap();
        assert!(removed.not_exists(p("/usr/bin/vim")));
        assert_eq!(eval(remove, &removed).unwrap(), removed, "idempotent");
    }

    #[test]
    fn closure_install_pulls_dependencies() {
        let e = compile_with_closures(&res("package", "golang-go", &[]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/usr/bin/go")));
        assert!(out.is_file(p("/usr/bin/perl")), "dependency installed");
    }

    #[test]
    fn closure_remove_removes_reverse_dependents() {
        let install_go = compile_with_closures(&res("package", "golang-go", &[]));
        let remove_perl = compile_with_closures(&res("package", "perl", &[("ensure", "absent")]));
        let installed = eval(install_go, &FileSystem::with_root()).unwrap();
        let removed = eval(remove_perl, &installed).unwrap();
        assert!(removed.not_exists(p("/usr/bin/perl")));
        assert!(removed.not_exists(p("/usr/bin/go")), "go removed with perl");
    }

    #[test]
    fn paper_fig3c_two_success_states() {
        // With dependency-closure modeling enabled (our extension of the
        // paper's §8 future work): package{golang-go: present} and
        // package{perl: absent} with no dependency — both orders succeed
        // with different results.
        let install_go = compile_with_closures(&res("package", "golang-go", &[]));
        let remove_perl = compile_with_closures(&res("package", "perl", &[("ensure", "absent")]));
        let init = FileSystem::with_root();
        let a = eval(remove_perl, &init)
            .and_then(|s| eval(install_go, &s))
            .unwrap();
        let b = eval(install_go, &init)
            .and_then(|s| eval(remove_perl, &s))
            .unwrap();
        assert!(a.is_file(p("/usr/bin/go")));
        assert!(!b.is_file(p("/usr/bin/go")));
        assert_ne!(a, b, "silent failure: two distinct success states");
    }

    #[test]
    fn unknown_package_errors() {
        let err = compile_err(&res("package", "no-such-pkg", &[]));
        assert!(matches!(err.kind(), CompileErrorKind::UnknownPackage(_)));
    }

    #[test]
    fn user_with_managehome_creates_home() {
        let e = compile_one(&res("user", "carol", &[("managehome", "true")]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/etc/users/carol")));
        assert!(out.is_dir(p("/home/carol")));
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn user_without_managehome_no_home() {
        let e = compile_one(&res("user", "carol", &[]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.not_exists(p("/home/carol")));
    }

    #[test]
    fn user_absent_removes_record() {
        let mk = compile_one(&res("user", "carol", &[]));
        let rm = compile_one(&res("user", "carol", &[("ensure", "absent")]));
        let made = eval(mk, &FileSystem::with_root()).unwrap();
        let gone = eval(rm, &made).unwrap();
        assert!(gone.not_exists(p("/etc/users/carol")));
    }

    #[test]
    fn group_record() {
        let e = compile_one(&res("group", "admins", &[("gid", "100")]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/etc/groups/admins")));
    }

    #[test]
    fn ssh_key_requires_home_directory() {
        let key = compile_one(&res(
            "ssh_authorized_key",
            "laptop",
            &[("user", "carol"), ("key", "AAAA")],
        ));
        // Without carol's home directory: error (missing user dependency).
        assert!(eval(key, &FileSystem::with_root()).is_err());
        // With it: writes both the logical entry and the real key-file.
        let fs = FileSystem::with_root()
            .set(p("/home"), FileState::DIR)
            .set(p("/home/carol"), FileState::DIR);
        let out = eval(key, &fs).unwrap();
        assert!(out.is_file(p("/ssh_keys/carol/laptop")));
        assert!(out.is_file(p("/home/carol/.ssh/authorized_keys")));
        assert_eq!(eval(key, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn two_keys_same_user_agree_on_keyfile() {
        let k1 = compile_one(&res(
            "ssh_authorized_key",
            "laptop",
            &[("user", "carol"), ("key", "AAAA")],
        ));
        let k2 = compile_one(&res(
            "ssh_authorized_key",
            "desktop",
            &[("user", "carol"), ("key", "BBBB")],
        ));
        let fs = FileSystem::with_root()
            .set(p("/home"), FileState::DIR)
            .set(p("/home/carol"), FileState::DIR);
        let a = eval(k1, &fs).and_then(|s| eval(k2, &s)).unwrap();
        let b = eval(k2, &fs).and_then(|s| eval(k1, &s)).unwrap();
        assert_eq!(a, b, "key insertion order does not matter");
    }

    #[test]
    fn ssh_key_missing_user_attr() {
        let err = compile_err(&res("ssh_authorized_key", "k", &[("key", "A")]));
        assert!(matches!(
            err.kind(),
            CompileErrorKind::MissingAttribute { .. }
        ));
    }

    #[test]
    fn service_requires_init_script() {
        let e = compile_one(&res("service", "nginx", &[("ensure", "running")]));
        assert!(eval(e, &FileSystem::with_root()).is_err(), "no init script");
        let fs = FileSystem::with_root()
            .set(p("/etc"), FileState::DIR)
            .set(p("/etc/init.d"), FileState::DIR)
            .set(
                p("/etc/init.d/nginx"),
                FileState::file(Content::intern("init")),
            );
        let out = eval(e, &fs).unwrap();
        assert!(out.is_file(p("/var/run/services/nginx")));
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn service_stop_is_idempotent() {
        let e = compile_one(&res("service", "nginx", &[("ensure", "stopped")]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.not_exists(p("/var/run/services/nginx")));
        assert_eq!(eval(e, &out).unwrap(), out);
    }

    #[test]
    fn cron_entry() {
        let e = compile_one(&res(
            "cron",
            "logrotate",
            &[("command", "/usr/sbin/logrotate"), ("hour", "2")],
        ));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/var/spool/cron/root/logrotate")));
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn cron_requires_command() {
        let err = compile_err(&res("cron", "x", &[]));
        assert!(matches!(
            err.kind(),
            CompileErrorKind::MissingAttribute { .. }
        ));
    }

    #[test]
    fn host_entry_stamps_etc_hosts() {
        let e = compile_one(&res("host", "db01", &[("ip", "10.0.0.5")]));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        assert!(out.is_file(p("/hosts_entries/db01")));
        assert!(out.is_file(p("/etc/hosts")));
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn notify_is_noop() {
        let e = compile_one(&res("notify", "hello", &[("message", "hi")]));
        assert_eq!(e, Expr::SKIP);
    }

    #[test]
    fn exec_is_rejected() {
        let err = compile_err(&res("exec", "apt-get update", &[]));
        assert!(matches!(err.kind(), CompileErrorKind::ExecUnsupported(_)));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let err = compile_err(&res("mount", "/mnt", &[]));
        assert!(matches!(
            err.kind(),
            CompileErrorKind::UnknownResourceType(_)
        ));
    }

    fn compile_with_metadata(r: &CatalogResource) -> Expr {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db).with_model_metadata(true);
        compile(r, &ctx).unwrap()
    }

    #[test]
    fn file_metadata_is_ignored_without_the_flag() {
        let plain = compile_one(&res("file", "/etc/motd", &[("content", "hi")]));
        let with_meta = compile_one(&res(
            "file",
            "/etc/motd",
            &[("content", "hi"), ("owner", "root"), ("mode", "0644")],
        ));
        assert_eq!(
            plain, with_meta,
            "metadata attributes compile away when the model is off"
        );
    }

    #[test]
    fn file_metadata_is_honored_with_the_flag() {
        use rehearsal_fs::{MetaField, MetaValue};
        let e = compile_with_metadata(&res(
            "file",
            "/etc/motd",
            &[
                ("content", "hi"),
                ("owner", "root"),
                ("group", "adm"),
                ("mode", "0640"),
            ],
        ));
        let fs = FileSystem::with_root().set(p("/etc"), FileState::DIR);
        let out = eval(e, &fs).unwrap();
        let meta = out.meta(p("/etc/motd")).unwrap();
        assert_eq!(meta.owner, MetaValue::Set(Content::intern("root")));
        assert_eq!(meta.group, MetaValue::Set(Content::intern("adm")));
        assert_eq!(meta.mode, MetaValue::Set(Content::intern("0640")));
        assert_eq!(
            meta.get(MetaField::Mode),
            MetaValue::Set(Content::intern("0640"))
        );
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn directory_metadata_is_honored() {
        use rehearsal_fs::MetaValue;
        let e = compile_with_metadata(&res(
            "file",
            "/srv/www",
            &[("ensure", "directory"), ("owner", "www-data")],
        ));
        let fs = FileSystem::with_root().set(p("/srv"), FileState::DIR);
        let out = eval(e, &fs).unwrap();
        assert!(out.is_dir(p("/srv/www")));
        assert_eq!(
            out.meta(p("/srv/www")).unwrap().owner,
            MetaValue::Set(Content::intern("www-data"))
        );
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
    }

    #[test]
    fn file_rejects_empty_metadata_value() {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db).with_model_metadata(true);
        let err = compile(&res("file", "/x", &[("owner", "")]), &ctx).unwrap_err();
        assert!(matches!(
            err.kind(),
            CompileErrorKind::InvalidAttribute { .. }
        ));
        // With the model off the same resource compiles (seed behavior:
        // the attribute is consumed and ignored, value unvalidated).
        let plain = compile_one(&res("file", "/x", &[("owner", "")]));
        assert_eq!(plain, compile_one(&res("file", "/x", &[])));
    }

    #[test]
    fn user_managehome_owns_home_directory() {
        use rehearsal_fs::MetaValue;
        let e = compile_with_metadata(&res(
            "user",
            "carol",
            &[("managehome", "true"), ("gid", "staff")],
        ));
        let out = eval(e, &FileSystem::with_root()).unwrap();
        let meta = out.meta(p("/home/carol")).unwrap();
        assert_eq!(meta.owner, MetaValue::Set(Content::intern("carol")));
        assert_eq!(meta.group, MetaValue::Set(Content::intern("staff")));
        assert_eq!(eval(e, &out).unwrap(), out, "idempotent");
        // Without the flag, the home stays unmanaged (seed behavior).
        let plain = compile_one(&res("user", "carol2", &[("managehome", "true")]));
        let out = eval(plain, &FileSystem::with_root()).unwrap();
        assert!(out.meta(p("/home/carol2")).unwrap().is_unmanaged());
    }

    #[test]
    fn latest_aliases_to_present_by_default_with_diagnostic() {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db);
        let latest = compile(&res("package", "vim", &[("ensure", "latest")]), &ctx).unwrap();
        let diags = ctx.drain_diagnostics();
        assert_eq!(diags.len(), 1, "aliasing is no longer silent");
        assert!(diags[0].message.contains("latest"), "{diags:?}");
        assert_eq!(diags[0].code, "R1101");
        let present = compile(&res("package", "vim", &[("ensure", "present")]), &ctx).unwrap();
        assert_eq!(latest, present, "default behavior unchanged");
        assert!(ctx.drain_diagnostics().is_empty(), "drained");
    }

    #[test]
    fn latest_differs_from_present_with_model_latest() {
        let db = PackageDb::builtin(Platform::Ubuntu);
        let ctx = CompileCtx::new(&db).with_model_latest(true);
        let latest = compile(&res("package", "vim", &[("ensure", "latest")]), &ctx).unwrap();
        let present = compile(&res("package", "vim", &[("ensure", "present")]), &ctx).unwrap();
        assert_ne!(latest, present, "the upgrade is modeled distinctly");
        assert_eq!(ctx.drain_diagnostics().len(), 1);
        // The upgrade re-overwrites an installed file with bumped content:
        // applying `latest` over a `present` install changes the state.
        let installed = eval(present, &FileSystem::with_root()).unwrap();
        let upgraded = eval(latest, &installed).unwrap();
        assert_ne!(installed, upgraded, "version bump re-overwrites files");
        assert_eq!(
            upgraded.get(p("/usr/bin/vim")),
            Some(FileState::file(Content::intern(
                "pkg:vim:/usr/bin/vim@latest"
            )))
        );
        // The upgrade itself is individually idempotent.
        assert_eq!(eval(latest, &upgraded).unwrap(), upgraded);
    }

    #[test]
    fn apache_default_conf_conflicts_with_file_resource() {
        // The paper's fig. 3a: package creates 000-default.conf; a file
        // resource overwrites it. Order matters.
        let pkg = compile_one(&res("package", "apache2", &[]));
        let conf = compile_one(&res(
            "file",
            "/etc/apache2/sites-available/000-default.conf",
            &[("content", "my site")],
        ));
        let init = FileSystem::with_root();
        // file-then-package errors (conf's parent dir does not exist yet).
        assert!(eval(conf, &init).is_err());
        // package-then-file succeeds and ends with the custom content.
        let ok = eval(pkg, &init).and_then(|s| eval(conf, &s)).unwrap();
        assert_eq!(
            ok.get(p("/etc/apache2/sites-available/000-default.conf")),
            Some(FileState::file(Content::intern("my site")))
        );
    }
}
