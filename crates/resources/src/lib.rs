//! The resource compiler `C : R → e` (paper §3.3).
//!
//! Compiles primitive Puppet resources into FS programs that capture their
//! essential filesystem effects. Supported types: `file`, `package`,
//! `user`, `group`, `ssh_authorized_key`, `service`, `cron`, `host`, and
//! `notify`. `exec` is rejected, matching the paper's stated limitation
//! (§8) — shell scripts have arbitrary effects and cannot be modeled.
//!
//! The models are deliberately *individually idempotent*: each resource
//! checks preconditions before acting, which is what makes the
//! commutativity analysis of the determinacy checker effective (§4.3).
//!
//! # Examples
//!
//! ```
//! use rehearsal_pkgdb::{PackageDb, Platform};
//! use rehearsal_puppet::{evaluate, parse, Facts};
//! use rehearsal_resources::{compile, CompileCtx};
//!
//! let manifest = parse("package { 'vim': ensure => present }")?;
//! let catalog = evaluate(&manifest, &Facts::ubuntu())?;
//! let db = PackageDb::builtin(Platform::Ubuntu);
//! let ctx = CompileCtx::new(&db);
//! let program = compile(&catalog.resources()[0], &ctx)?;
//! assert!(program.size() > 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod compile;
mod error;
pub mod helpers;

pub use compile::{compile, CompileCtx, SUPPORTED_TYPES};
pub use error::{CompileError, CompileErrorKind};
