//! Shared FS program idioms used by the resource models.

use rehearsal_fs::{Content, Expr, FsPath, Pred};

/// `if (¬dir?(p)) mkdir(p)` — idempotent directory creation.
///
/// This is exactly the guarded form the commutativity analysis recognizes
/// as the abstract value `D` (paper §4.3): it ensures `p` is a directory or
/// errors (when `p` is an existing file, `mkdir`'s precondition fails).
pub fn ensure_dir(p: FsPath) -> Expr {
    Expr::if_then(Pred::is_dir(p).not(), Expr::mkdir(p))
}

/// Idempotent creation of every ancestor directory of `p` (excluding `p`
/// itself and the root), parents first.
pub fn ensure_parent_dirs(p: FsPath) -> Expr {
    let mut ancestors = p.ancestors();
    ancestors.retain(|a| *a != FsPath::root());
    ancestors.reverse(); // parents first
    Expr::seq_all(ancestors.into_iter().map(ensure_dir))
}

/// Writes `content` to `p` regardless of whether a file is already there
/// (errors if `p` is a directory). This is the "definitive write" shape the
/// pruning analysis detects (paper §4.4): afterwards `p` is certainly a
/// file with `content`.
pub fn overwrite(p: FsPath, content: Content) -> Expr {
    Expr::if_(
        Pred::does_not_exist(p),
        Expr::create_file(p, content),
        Expr::if_(
            Pred::is_file(p),
            Expr::rm(p).seq(Expr::create_file(p, content)),
            Expr::ERROR,
        ),
    )
}

/// Creates the file only if nothing is there; an existing file is left
/// alone; a directory is an error.
pub fn create_if_absent(p: FsPath, content: Content) -> Expr {
    Expr::if_(
        Pred::does_not_exist(p),
        Expr::create_file(p, content),
        Expr::if_(Pred::is_file(p), Expr::SKIP, Expr::ERROR),
    )
}

/// Removes `p` if it is a file; leaves absence alone; errors on a
/// directory.
pub fn remove_file_if_present(p: FsPath) -> Expr {
    Expr::if_(
        Pred::is_file(p),
        Expr::rm(p),
        Expr::if_(Pred::does_not_exist(p), Expr::SKIP, Expr::ERROR),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{eval, FileState, FileSystem};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn ensure_dir_is_idempotent() {
        let fs = FileSystem::with_root();
        let e = ensure_dir(p("/a"));
        let fs1 = eval(e, &fs).unwrap();
        let fs2 = eval(e, &fs1).unwrap();
        assert_eq!(fs1, fs2);
        assert!(fs1.is_dir(p("/a")));
    }

    #[test]
    fn ensure_dir_errors_on_file() {
        let fs = FileSystem::with_root().set(p("/a"), FileState::file(Content::intern("x")));
        assert!(eval(ensure_dir(p("/a")), &fs).is_err());
    }

    #[test]
    fn ensure_parent_dirs_builds_tree() {
        let fs = FileSystem::with_root();
        let e = ensure_parent_dirs(p("/usr/share/doc/vim/README"));
        let out = eval(e, &fs).unwrap();
        assert!(out.is_dir(p("/usr")));
        assert!(out.is_dir(p("/usr/share/doc/vim")));
        assert!(out.not_exists(p("/usr/share/doc/vim/README")));
    }

    #[test]
    fn overwrite_replaces_content() {
        let c1 = Content::intern("old");
        let c2 = Content::intern("new");
        let fs = FileSystem::with_root().set(p("/f"), FileState::file(c1));
        let out = eval(overwrite(p("/f"), c2), &fs).unwrap();
        assert_eq!(out.get(p("/f")), Some(FileState::file(c2)));
        // Also works when absent.
        let out2 = eval(overwrite(p("/f"), c2), &FileSystem::with_root()).unwrap();
        assert_eq!(out2.get(p("/f")), Some(FileState::file(c2)));
        // Errors on a directory.
        let dirfs = FileSystem::with_root().set(p("/f"), FileState::DIR);
        assert!(eval(overwrite(p("/f"), c2), &dirfs).is_err());
    }

    #[test]
    fn create_if_absent_preserves_existing() {
        let c1 = Content::intern("keep");
        let c2 = Content::intern("ignored");
        let fs = FileSystem::with_root().set(p("/f"), FileState::file(c1));
        let out = eval(create_if_absent(p("/f"), c2), &fs).unwrap();
        assert_eq!(out.get(p("/f")), Some(FileState::file(c1)));
    }

    #[test]
    fn remove_file_if_present_is_idempotent() {
        let c = Content::intern("x");
        let fs = FileSystem::with_root().set(p("/f"), FileState::file(c));
        let e = remove_file_if_present(p("/f"));
        let fs1 = eval(e, &fs).unwrap();
        let fs2 = eval(e, &fs1).unwrap();
        assert!(fs1.not_exists(p("/f")));
        assert_eq!(fs1, fs2);
    }
}
