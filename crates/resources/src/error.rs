//! Errors from the resource compiler.
//!
//! A [`CompileError`] is a kind plus a [`Span`]: the declaration (or the
//! precise attribute) in the manifest that the offending resource came
//! from. [`compile`](crate::compile) anchors every error it returns, so
//! callers can always render a source snippet.

use rehearsal_diag::{codes, Diagnostic, Span};
use rehearsal_puppet::CatalogResource;
use std::fmt;

/// What went wrong compiling a resource (see [`CompileError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileErrorKind {
    /// The resource type is not modeled.
    UnknownResourceType(String),
    /// `exec` resources embed shell scripts with arbitrary effects; the
    /// paper explicitly excludes them (§8).
    ExecUnsupported(String),
    /// A required attribute is missing.
    MissingAttribute {
        /// The resource (display name).
        resource: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute has an unsupported or malformed value.
    InvalidAttribute {
        /// The resource (display name).
        resource: String,
        /// The offending attribute.
        attribute: String,
        /// Why it is invalid.
        reason: String,
    },
    /// A `package` resource references a package missing from the database.
    UnknownPackage(String),
    /// A path attribute failed to parse.
    BadPath {
        /// The resource (display name).
        resource: String,
        /// The unparseable path text.
        path: String,
        /// Parser message.
        reason: String,
    },
}

impl CompileErrorKind {
    /// The stable diagnostic code for this kind.
    pub fn code(&self) -> &'static str {
        match self {
            CompileErrorKind::UnknownResourceType(_) => codes::UNMODELED_TYPE,
            CompileErrorKind::ExecUnsupported(_) => codes::EXEC_UNSUPPORTED,
            CompileErrorKind::MissingAttribute { .. } => codes::MISSING_ATTRIBUTE,
            CompileErrorKind::InvalidAttribute { .. } => codes::INVALID_ATTRIBUTE,
            CompileErrorKind::UnknownPackage(_) => codes::UNKNOWN_PACKAGE,
            CompileErrorKind::BadPath { .. } => codes::BAD_PATH,
        }
    }
}

impl fmt::Display for CompileErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileErrorKind::UnknownResourceType(t) => {
                write!(f, "resource type {t:?} is not modeled")
            }
            CompileErrorKind::ExecUnsupported(title) => write!(
                f,
                "exec[{title}]: exec resources run arbitrary shell and cannot be verified (paper §8)"
            ),
            CompileErrorKind::MissingAttribute { resource, attribute } => {
                write!(f, "{resource}: missing required attribute {attribute:?}")
            }
            CompileErrorKind::InvalidAttribute {
                resource,
                attribute,
                reason,
            } => write!(f, "{resource}: invalid attribute {attribute:?}: {reason}"),
            CompileErrorKind::UnknownPackage(name) => {
                write!(f, "package {name:?} is not in the package database")
            }
            CompileErrorKind::BadPath {
                resource,
                path,
                reason,
            } => write!(f, "{resource}: bad path {path:?}: {reason}"),
        }
    }
}

/// An error compiling a catalog resource to an FS program, with the span
/// of the declaration (or attribute) it arose from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    kind: CompileErrorKind,
    span: Span,
}

impl CompileError {
    /// Creates an error with no location yet (the compiler anchors it to
    /// the resource's declaration before returning).
    pub fn new(kind: CompileErrorKind) -> CompileError {
        CompileError {
            kind,
            span: Span::DUMMY,
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> &CompileErrorKind {
        &self.kind
    }

    /// Where it went wrong (dummy when unlocated).
    pub fn span(&self) -> Span {
        self.span
    }

    /// The stable diagnostic code.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// Sets the span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> CompileError {
        self.span = span;
        self
    }

    /// Anchors the error into the offending resource's declaration: the
    /// precise attribute span when the kind names an attribute, the
    /// declaration span otherwise. Already-anchored errors are unchanged.
    #[must_use]
    pub fn anchored(mut self, resource: &CatalogResource) -> CompileError {
        if !self.span.is_dummy() {
            return self;
        }
        self.span = match &self.kind {
            CompileErrorKind::InvalidAttribute { attribute, .. } => resource.attr_span(attribute),
            CompileErrorKind::BadPath { .. } => resource.attr_span("path"),
            CompileErrorKind::UnknownPackage(_) => resource.attr_span("name"),
            _ => resource.span(),
        };
        self
    }

    /// This error as a [`Diagnostic`].
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(self.code(), self.kind.to_string()).with_primary(self.span, "")
    }
}

impl From<CompileErrorKind> for CompileError {
    fn from(kind: CompileErrorKind) -> CompileError {
        CompileError::new(kind)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

impl std::error::Error for CompileError {}

impl From<rehearsal_pkgdb::UnknownPackageError> for CompileError {
    fn from(e: rehearsal_pkgdb::UnknownPackageError) -> CompileError {
        CompileError::new(CompileErrorKind::UnknownPackage(e.name().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_diag::Pos;
    use std::collections::BTreeMap;

    #[test]
    fn anchoring_prefers_attribute_spans() {
        let rspan = Span::new(Pos::new(1, 1), Pos::new(1, 30));
        let aspan = Span::new(Pos::new(1, 10), Pos::new(1, 20));
        let r = CatalogResource::new("file", "/x", BTreeMap::new())
            .with_span(rspan)
            .with_attr_spans([("ensure".to_string(), aspan)].into_iter().collect());
        let e = CompileError::new(CompileErrorKind::InvalidAttribute {
            resource: "File[/x]".into(),
            attribute: "ensure".into(),
            reason: "bad".into(),
        })
        .anchored(&r);
        assert!(e.span().same(&aspan));
        assert_eq!(e.code(), "R1004");

        let e = CompileError::new(CompileErrorKind::ExecUnsupported("x".into())).anchored(&r);
        assert!(e.span().same(&rspan));
        assert_eq!(e.to_diagnostic().code, "R1002");
    }
}
