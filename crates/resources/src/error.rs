//! Errors from the resource compiler.

use std::fmt;

/// An error compiling a catalog resource to an FS program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The resource type is not modeled.
    UnknownResourceType(String),
    /// `exec` resources embed shell scripts with arbitrary effects; the
    /// paper explicitly excludes them (§8).
    ExecUnsupported(String),
    /// A required attribute is missing.
    MissingAttribute {
        /// The resource (display name).
        resource: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute has an unsupported or malformed value.
    InvalidAttribute {
        /// The resource (display name).
        resource: String,
        /// The offending attribute.
        attribute: String,
        /// Why it is invalid.
        reason: String,
    },
    /// A `package` resource references a package missing from the database.
    UnknownPackage(String),
    /// A path attribute failed to parse.
    BadPath {
        /// The resource (display name).
        resource: String,
        /// The unparseable path text.
        path: String,
        /// Parser message.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownResourceType(t) => {
                write!(f, "resource type {t:?} is not modeled")
            }
            CompileError::ExecUnsupported(title) => write!(
                f,
                "exec[{title}]: exec resources run arbitrary shell and cannot be verified (paper §8)"
            ),
            CompileError::MissingAttribute { resource, attribute } => {
                write!(f, "{resource}: missing required attribute {attribute:?}")
            }
            CompileError::InvalidAttribute {
                resource,
                attribute,
                reason,
            } => write!(f, "{resource}: invalid attribute {attribute:?}: {reason}"),
            CompileError::UnknownPackage(name) => {
                write!(f, "package {name:?} is not in the package database")
            }
            CompileError::BadPath {
                resource,
                path,
                reason,
            } => write!(f, "{resource}: bad path {path:?}: {reason}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<rehearsal_pkgdb::UnknownPackageError> for CompileError {
    fn from(e: rehearsal_pkgdb::UnknownPackageError) -> CompileError {
        CompileError::UnknownPackage(e.name().to_string())
    }
}
