//! Property-based tests comparing the CDCL solver against a brute-force
//! oracle, and checking formula-layer invariants.
//!
//! Generation uses a small in-file deterministic PRNG instead of an
//! external property-testing crate (the build environment is offline), so
//! every run covers the same seeded case set.

use rehearsal_solver::{Cnf, Ctx, Formula, Lit, Var};

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A random CNF with up to `max_vars` variables and `max_clauses` clauses
/// of length 1..=4.
fn random_cnf(rng: &mut Prng, max_vars: usize, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new();
    cnf.reserve_vars(max_vars);
    for _ in 0..rng.usize(max_clauses + 1) {
        let len = 1 + rng.usize(4);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Lit::new(Var::from_index(rng.usize(max_vars)), rng.bool()))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// The CDCL solver and the brute-force oracle agree on satisfiability,
/// and CDCL models actually satisfy the CNF.
#[test]
fn cdcl_agrees_with_brute_force() {
    let mut rng = Prng::new(1);
    for case in 0..256 {
        let cnf = random_cnf(&mut rng, 8, 24);
        let brute = cnf.solve_brute_force();
        let cdcl = cnf.solve();
        assert_eq!(
            brute.is_some(),
            cdcl.is_sat(),
            "case {case}: verdict mismatch on {}",
            cnf.to_dimacs()
        );
        if let Some(model) = cdcl.model() {
            let assignment: Vec<bool> = (0..cnf.num_vars())
                .map(|i| model.var_value(Var::from_index(i)))
                .collect();
            assert!(
                cnf.eval(&assignment),
                "case {case}: CDCL model does not satisfy CNF"
            );
        }
    }
}

/// DIMACS render/parse round-trips.
#[test]
fn dimacs_roundtrip() {
    let mut rng = Prng::new(2);
    for _ in 0..256 {
        let cnf = random_cnf(&mut rng, 6, 12);
        let text = cnf.to_dimacs();
        let parsed = Cnf::from_dimacs(&text).expect("well-formed dimacs");
        assert_eq!(cnf, parsed);
    }
}

/// A tiny random formula AST for testing the `Ctx` layer.
#[derive(Debug, Clone)]
enum TestF {
    Var(usize),
    Not(Box<TestF>),
    And(Box<TestF>, Box<TestF>),
    Or(Box<TestF>, Box<TestF>),
    Ite(Box<TestF>, Box<TestF>, Box<TestF>),
    Iff(Box<TestF>, Box<TestF>),
}

fn random_testf(rng: &mut Prng, nvars: usize, depth: usize) -> TestF {
    if depth == 0 || rng.usize(4) == 0 {
        return TestF::Var(rng.usize(nvars));
    }
    let sub = |rng: &mut Prng| Box::new(random_testf(rng, nvars, depth - 1));
    match rng.usize(5) {
        0 => TestF::Not(sub(rng)),
        1 => TestF::And(sub(rng), sub(rng)),
        2 => TestF::Or(sub(rng), sub(rng)),
        3 => TestF::Ite(sub(rng), sub(rng), sub(rng)),
        _ => TestF::Iff(sub(rng), sub(rng)),
    }
}

fn build(ctx: &mut Ctx, vars: &[Formula], f: &TestF) -> Formula {
    match f {
        TestF::Var(i) => vars[*i],
        TestF::Not(a) => {
            let fa = build(ctx, vars, a);
            ctx.not(fa)
        }
        TestF::And(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.and2(fa, fb)
        }
        TestF::Or(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.or2(fa, fb)
        }
        TestF::Ite(c, t, e) => {
            let fc = build(ctx, vars, c);
            let ft = build(ctx, vars, t);
            let fe = build(ctx, vars, e);
            ctx.ite(fc, ft, fe)
        }
        TestF::Iff(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.iff(fa, fb)
        }
    }
}

fn eval_testf(f: &TestF, env: &[bool]) -> bool {
    match f {
        TestF::Var(i) => env[*i],
        TestF::Not(a) => !eval_testf(a, env),
        TestF::And(a, b) => eval_testf(a, env) && eval_testf(b, env),
        TestF::Or(a, b) => eval_testf(a, env) || eval_testf(b, env),
        TestF::Ite(c, t, e) => {
            if eval_testf(c, env) {
                eval_testf(t, env)
            } else {
                eval_testf(e, env)
            }
        }
        TestF::Iff(a, b) => eval_testf(a, env) == eval_testf(b, env),
    }
}

/// Tseitin conversion + CDCL is equisatisfiable with direct truth-table
/// enumeration of the formula.
#[test]
fn tseitin_equisatisfiable() {
    let mut rng = Prng::new(3);
    let nvars = 4usize;
    for case in 0..128 {
        let tf = random_testf(&mut rng, nvars, 5);
        let mut ctx = Ctx::new();
        let vars: Vec<Formula> = (0..nvars).map(|_| ctx.fresh_bool()).collect();
        let f = build(&mut ctx, &vars, &tf);

        let truth_table_sat = (0..1u32 << nvars).any(|bits| {
            let env: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            eval_testf(&tf, &env)
        });
        let solver_sat = ctx.solve(f).is_some();
        assert_eq!(truth_table_sat, solver_sat, "case {case}: {tf:?}");
    }
}

/// Formula simplification preserves semantics: the hash-consed
/// construction evaluates like the original AST under all assignments.
#[test]
fn construction_preserves_semantics() {
    let mut rng = Prng::new(4);
    let nvars = 4usize;
    for case in 0..128 {
        let tf = random_testf(&mut rng, nvars, 5);
        let mut ctx = Ctx::new();
        let vars: Vec<Formula> = (0..nvars).map(|_| ctx.fresh_bool()).collect();
        let f = build(&mut ctx, &vars, &tf);
        for bits in 0..1u32 << nvars {
            let env: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            let expected = eval_testf(&tf, &env);
            let got = ctx.eval_formula(f, &|v| env[v as usize]);
            assert_eq!(expected, got, "case {case}: {tf:?} under {env:?}");
        }
    }
}
