//! Property-based tests comparing the CDCL solver against a brute-force
//! oracle, and checking formula-layer invariants.

use proptest::prelude::*;
use rehearsal_solver::{Cnf, Ctx, Formula, Lit, Var};

/// Strategy for a random CNF with up to `max_vars` variables and
/// `max_clauses` clauses of length 1..=4.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..max_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        cnf.reserve_vars(max_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .into_iter()
                .map(|(v, pos)| Lit::new(Var::from_index(v), pos))
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The CDCL solver and the brute-force oracle agree on satisfiability,
    /// and CDCL models actually satisfy the CNF.
    #[test]
    fn cdcl_agrees_with_brute_force(cnf in arb_cnf(8, 24)) {
        let brute = cnf.solve_brute_force();
        let cdcl = cnf.solve();
        prop_assert_eq!(brute.is_some(), cdcl.is_sat(), "verdict mismatch");
        if let Some(model) = cdcl.model() {
            let assignment: Vec<bool> = (0..cnf.num_vars())
                .map(|i| model.var_value(Var::from_index(i)))
                .collect();
            prop_assert!(cnf.eval(&assignment), "CDCL model does not satisfy CNF");
        }
    }

    /// DIMACS render/parse round-trips.
    #[test]
    fn dimacs_roundtrip(cnf in arb_cnf(6, 12)) {
        let text = cnf.to_dimacs();
        let parsed = Cnf::from_dimacs(&text).expect("well-formed dimacs");
        prop_assert_eq!(cnf, parsed);
    }
}

/// A tiny random formula AST for testing the `Ctx` layer.
#[derive(Debug, Clone)]
enum TestF {
    Var(usize),
    Not(Box<TestF>),
    And(Box<TestF>, Box<TestF>),
    Or(Box<TestF>, Box<TestF>),
    Ite(Box<TestF>, Box<TestF>, Box<TestF>),
    Iff(Box<TestF>, Box<TestF>),
}

fn arb_testf(nvars: usize) -> impl Strategy<Value = TestF> {
    let leaf = (0..nvars).prop_map(TestF::Var);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| TestF::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TestF::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TestF::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| TestF::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            (inner.clone(), inner).prop_map(|(a, b)| TestF::Iff(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(ctx: &mut Ctx, vars: &[Formula], f: &TestF) -> Formula {
    match f {
        TestF::Var(i) => vars[*i],
        TestF::Not(a) => {
            let fa = build(ctx, vars, a);
            ctx.not(fa)
        }
        TestF::And(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.and2(fa, fb)
        }
        TestF::Or(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.or2(fa, fb)
        }
        TestF::Ite(c, t, e) => {
            let fc = build(ctx, vars, c);
            let ft = build(ctx, vars, t);
            let fe = build(ctx, vars, e);
            ctx.ite(fc, ft, fe)
        }
        TestF::Iff(a, b) => {
            let fa = build(ctx, vars, a);
            let fb = build(ctx, vars, b);
            ctx.iff(fa, fb)
        }
    }
}

fn eval_testf(f: &TestF, env: &[bool]) -> bool {
    match f {
        TestF::Var(i) => env[*i],
        TestF::Not(a) => !eval_testf(a, env),
        TestF::And(a, b) => eval_testf(a, env) && eval_testf(b, env),
        TestF::Or(a, b) => eval_testf(a, env) || eval_testf(b, env),
        TestF::Ite(c, t, e) => {
            if eval_testf(c, env) {
                eval_testf(t, env)
            } else {
                eval_testf(e, env)
            }
        }
        TestF::Iff(a, b) => eval_testf(a, env) == eval_testf(b, env),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tseitin conversion + CDCL is equisatisfiable with direct truth-table
    /// enumeration of the formula.
    #[test]
    fn tseitin_equisatisfiable(tf in arb_testf(4)) {
        let nvars = 4usize;
        let mut ctx = Ctx::new();
        let vars: Vec<Formula> = (0..nvars).map(|_| ctx.fresh_bool()).collect();
        let f = build(&mut ctx, &vars, &tf);

        let truth_table_sat = (0..1u32 << nvars).any(|bits| {
            let env: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            eval_testf(&tf, &env)
        });
        let solver_sat = ctx.solve(f).is_some();
        prop_assert_eq!(truth_table_sat, solver_sat);
    }

    /// Formula simplification preserves semantics: the hash-consed
    /// construction evaluates like the original AST under all assignments.
    #[test]
    fn construction_preserves_semantics(tf in arb_testf(4)) {
        let nvars = 4usize;
        let mut ctx = Ctx::new();
        let vars: Vec<Formula> = (0..nvars).map(|_| ctx.fresh_bool()).collect();
        let f = build(&mut ctx, &vars, &tf);
        for bits in 0..1u32 << nvars {
            let env: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
            let expected = eval_testf(&tf, &env);
            let got = ctx.eval_formula(f, &|v| env[v as usize]);
            prop_assert_eq!(expected, got);
        }
    }
}
