//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! This is a from-scratch implementation in the MiniSat lineage:
//! two-watched-literal propagation, first-UIP conflict analysis with clause
//! minimization, VSIDS-style variable activity with an indexed binary heap,
//! phase saving, Luby restarts, and activity-based learnt-clause deletion.
//!
//! Rehearsal's determinacy formulas are effectively propositional, so after
//! finite-domain grounding (see [`crate::ctx`]) this solver plays the role
//! that Z3 plays in the original paper.
//!
//! # Examples
//!
//! ```
//! use rehearsal_solver::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = Lit::positive(s.new_var());
//! let b = Lit::positive(s.new_var());
//! s.add_clause([a, b]);
//! s.add_clause([!a]);
//! let model = s.solve().expect_sat();
//! assert!(model.value(b));
//! ```

use crate::lit::{LBool, Lit, Var};

/// Index of a clause in the solver's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

const CLAUSE_NONE: ClauseRef = ClauseRef(u32::MAX);

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    /// A literal from the clause other than the watched one; if it is
    /// already true the clause is satisfied and need not be inspected.
    blocker: Lit,
}

/// The result of a satisfiability query.
#[derive(Debug, Clone)]
pub enum SatResult {
    /// The formula is satisfiable; a model is provided.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver gave up (deadline exceeded).
    Unknown,
}

impl SatResult {
    /// Returns `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Unwraps the model.
    ///
    /// # Panics
    ///
    /// Panics if the result is [`SatResult::Unsat`].
    pub fn expect_sat(self) -> Model {
        match self {
            SatResult::Sat(m) => m,
            SatResult::Unsat => panic!("expected SAT, formula is UNSAT"),
            SatResult::Unknown => panic!("expected SAT, solver gave up"),
        }
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A satisfying assignment.
///
/// Variables the solver never had to decide are reported as `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The truth value of `lit` in this model.
    pub fn value(&self, lit: Lit) -> bool {
        let v = self.values.get(lit.var().index()).copied().unwrap_or(false);
        if lit.is_positive() {
            v
        } else {
            !v
        }
    }

    /// The truth value of `var` in this model.
    pub fn var_value(&self, var: Var) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Aggregate statistics from a solver run, useful for benchmarking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
}

/// Indexed max-heap over variables ordered by activity.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    index: Vec<usize>,
}

impl VarHeap {
    fn grow_to(&mut self, n: usize) {
        if self.index.len() < n {
            self.index.resize(n, usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.index[v.index()] != usize::MAX
    }

    fn push(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.index[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        self.index[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn update(&mut self, v: Var, activity: &[f64]) {
        let pos = self.index[v.index()];
        if pos != usize::MAX {
            self.sift_up(pos, activity);
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len()
                && activity[self.heap[left].index()] > activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = a;
        self.index[self.heap[b].index()] = b;
    }
}

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// See the [module documentation](self) for an overview and example.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses in which that literal is
    /// one of the two watched literals.
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Saved phase for each variable (phase saving).
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarHeap,
    /// Scratch flags for conflict analysis.
    seen: Vec<bool>,
    /// Set to true when a top-level conflict has been found.
    unsat: bool,
    stats: SolverStats,
    max_learnts: f64,
    /// Optional wall-clock deadline checked between restarts.
    deadline: Option<std::time::Instant>,
    /// Optional cooperative-cancellation flag, polled inside the search
    /// loop so an external scheduler can interrupt a long solve.
    interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLAUSE_DECAY: f64 = 1.0 / 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarHeap::default(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
            max_learnts: 0.0,
            deadline: None,
            interrupt: None,
        }
    }

    /// Sets a wall-clock deadline; [`Solver::solve`] returns
    /// [`SatResult::Unknown`] if it is exceeded. The deadline is polled
    /// inside the DPLL/CDCL search loop (every 1024 conflicts or
    /// decisions), so even a single long restart interval cannot overshoot
    /// it by much.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Attaches a cooperative-cancellation flag. When the flag becomes
    /// `true`, [`Solver::solve`] returns [`SatResult::Unknown`] at the next
    /// poll point — the same in-loop points as the deadline — letting a
    /// fleet scheduler interrupt a solve mid-search instead of waiting for
    /// a permutation boundary.
    pub fn set_interrupt(&mut self, flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Whether the deadline has passed or the interrupt flag is raised.
    fn should_stop(&self) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() > d {
                return true;
            }
        }
        false
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(CLAUSE_NONE);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assigns.len());
        self.order.push(v, &self.activity);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Copies out the short learnt clauses mentioning only variables below
    /// `var_bound`, for sharing with sibling solvers working on the same
    /// background theory.
    ///
    /// Every learnt clause is implied by the solver's clause database
    /// alone (assumption literals are never resolved away — they appear
    /// in the learnt clause itself), so a clause that survives the
    /// `var_bound` filter is implied by the permanent clauses restricted
    /// to the shared variable prefix and can be added to any solver whose
    /// database subsumes that prefix. `max_len` keeps the export to the
    /// high-value short clauses.
    pub fn export_learnts(&self, max_len: usize, var_bound: usize) -> Vec<Vec<Lit>> {
        self.clauses
            .iter()
            .filter(|c| {
                c.learnt
                    && !c.deleted
                    && !c.lits.is_empty()
                    && c.lits.len() <= max_len
                    && c.lits.iter().all(|l| l.var().index() < var_bound)
            })
            .map(|c| c.lits.clone())
            .collect()
    }

    fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Adds a clause. Returns `false` if the solver is already known to be
    /// unsatisfiable at the top level.
    ///
    /// Clauses may only be added before/between `solve` calls (the solver
    /// backtracks to level 0 after solving).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.unsat {
            return false;
        }
        let mut ls: Vec<Lit> = lits.into_iter().collect();
        ls.sort();
        ls.dedup();
        // Remove top-level false literals; detect tautologies and satisfied
        // clauses.
        let mut i = 0;
        while i < ls.len() {
            if i + 1 < ls.len() && ls[i] == !ls[i + 1] {
                return true; // tautology: x ∨ ¬x
            }
            match self.value_lit(ls[i]) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {
                    ls.remove(i);
                }
                LBool::Undef => i += 1,
            }
        }
        match ls.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.unchecked_enqueue(ls[0], CLAUSE_NONE);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(ls, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref.0 as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[w0.code()].retain(|w| w.cref != cref);
        self.watches[w1.code()].retain(|w| w.cref != cref);
        let c = &mut self.clauses[cref.0 as usize];
        c.deleted = true;
        if c.learnt {
            self.stats.learnt_clauses -= 1;
        }
        c.lits.clear();
        c.lits.shrink_to_fit();
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let vi = lit.var().index();
        self.assigns[vi] = LBool::from_bool(lit.is_positive());
        self.level[vi] = self.decision_level();
        self.reason[vi] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching `false_lit`.
            let mut i = 0;
            'watchers: while i < self.watches[false_lit.code()].len() {
                let Watcher { cref, blocker } = self.watches[false_lit.code()][i];
                if self.value_lit(blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = cref.0 as usize;
                // Make sure the false literal is at position 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if first != blocker && self.value_lit(first) == LBool::True {
                    // Clause satisfied; refresh blocker.
                    self.watches[false_lit.code()][i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.value_lit(cand) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[false_lit.code()].swap_remove(i);
                        self.watches[cand.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break 'watchers;
                }
                self.unchecked_enqueue(first, cref);
                i += 1;
            }
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.clause_inc;
        if c.activity > RESCALE_LIMIT {
            for cl in self.clauses.iter_mut().filter(|cl| cl.learnt) {
                cl.activity *= 1e-100;
            }
            self.clause_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::from_index(0))]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl.0 as usize].lits.len() {
                let q = self.clauses[confl.0 as usize].lits[k];
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.bump_var(q.var());
                    if self.level[vi] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()];
            debug_assert!(confl != CLAUSE_NONE, "resolved literal must have a reason");
            // Reorder reason clause so the implied literal (pl) is skipped.
            let ci = confl.0 as usize;
            if self.clauses[ci].lits[0] != pl {
                let pos = self.clauses[ci]
                    .lits
                    .iter()
                    .position(|&l| l == pl)
                    .expect("implied literal in its reason clause");
                self.clauses[ci].lits.swap(0, pos);
            }
        }
        learnt[0] = !p.expect("first UIP found");

        // Clause minimization: drop literals whose reason is subsumed by the
        // rest of the learnt clause (one resolution step).
        for l in &learnt {
            self.seen[l.var().index()] = true;
        }
        let mut minimized = vec![learnt[0]];
        for &q in &learnt[1..] {
            let r = self.reason[q.var().index()];
            let redundant = r != CLAUSE_NONE
                && self.clauses[r.0 as usize].lits.iter().all(|&x| {
                    x.var() == q.var()
                        || self.seen[x.var().index()]
                        || self.level[x.var().index()] == 0
                });
            if !redundant {
                minimized.push(q);
            }
        }
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = minimized;

        // Find backtrack level: the second-highest decision level.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let vi = lit.var().index();
            self.phase[vi] = lit.is_positive();
            self.assigns[vi] = LBool::Undef;
            self.reason[vi] = CLAUSE_NONE;
            self.order.push(lit.var(), &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref.0 as usize];
        if c.lits.is_empty() {
            return false;
        }
        let v = c.lits[0].var();
        self.reason[v.index()] == cref && self.assigns[v.index()] != LBool::Undef
    }

    fn reduce_db(&mut self) {
        let mut learnts: Vec<ClauseRef> = (0..self.clauses.len())
            .map(|i| ClauseRef(i as u32))
            .filter(|&c| {
                let cl = &self.clauses[c.0 as usize];
                cl.learnt && !cl.deleted && cl.lits.len() > 2 && !self.locked(c)
            })
            .collect();
        learnts.sort_by(|&a, &b| {
            let aa = self.clauses[a.0 as usize].activity;
            let ba = self.clauses[b.0 as usize].activity;
            aa.partial_cmp(&ba).unwrap_or(std::cmp::Ordering::Equal)
        });
        for &cref in learnts.iter().take(learnts.len() / 2) {
            self.detach_clause(cref);
        }
    }

    /// Solves the current set of clauses.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals: the result is relative
    /// to all assumptions holding. Assumptions do not persist — the next
    /// call starts fresh. This is the standard incremental-SAT interface.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        self.max_learnts = (self.num_clauses() as f64 / 3.0).max(1000.0);
        let mut restart_num = 0u64;
        loop {
            if self.should_stop() {
                self.cancel_until(0);
                return SatResult::Unknown;
            }
            // (Re-)apply assumptions as pseudo-decisions at the start of
            // each restart.
            let mut assumptions_conflict = false;
            for &a in assumptions {
                match self.value_lit(a) {
                    LBool::True => {}
                    LBool::False => {
                        assumptions_conflict = true;
                        break;
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(a, CLAUSE_NONE);
                        if self.propagate().is_some() {
                            assumptions_conflict = true;
                            break;
                        }
                    }
                }
            }
            if assumptions_conflict {
                self.cancel_until(0);
                return SatResult::Unsat;
            }
            let budget = luby(restart_num) * RESTART_BASE;
            match self.search_above(budget, assumptions.len() as u32) {
                SearchResult::Sat => {
                    let values = self.assigns.iter().map(|&a| a == LBool::True).collect();
                    self.cancel_until(0);
                    return SatResult::Sat(Model { values });
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    if assumptions.is_empty() {
                        self.unsat = true;
                    }
                    return SatResult::Unsat;
                }
                SearchResult::Restart => {
                    restart_num += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    self.max_learnts *= 1.05;
                }
            }
        }
    }

    /// Search that treats decision levels `<= assumption_level` as the
    /// effective root: a conflict forcing a backjump into the assumptions
    /// is UNSAT-under-assumptions.
    fn search_above(&mut self, conflict_budget: u64, assumption_level: u32) -> SearchResult {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                // Deadline/interrupt check with bounded overhead; the same
                // cadence bounds the sampled trace events.
                if conflicts & 0x3FF == 0 {
                    rehearsal_trace::event("sat.conflicts.1k", "solver");
                    if self.should_stop() {
                        return SearchResult::Restart;
                    }
                }
                if self.decision_level() <= assumption_level {
                    return SearchResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let bt = bt.max(assumption_level.min(self.decision_level() - 1));
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], CLAUSE_NONE);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, cref);
                }
                self.var_inc *= VAR_DECAY;
                self.clause_inc *= CLAUSE_DECAY;
            } else {
                if conflicts >= conflict_budget {
                    return SearchResult::Restart;
                }
                if self.stats.learnt_clauses as f64 >= self.max_learnts {
                    self.reduce_db();
                }
                match self.pick_branch_var() {
                    None => return SearchResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.stats.decisions & 0x3FF == 0 && self.should_stop() {
                            return SearchResult::Restart;
                        }
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.phase[v.index()]);
                        self.unchecked_enqueue(lit, CLAUSE_NONE);
                    }
                }
            }
        }
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Restart,
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence that contains index `x` and the size of
    // that subsequence.
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        s.add_clause([!v[0]]);
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn no_clauses_sat() {
        let mut s = Solver::new();
        lits(&mut s, 3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn raised_interrupt_returns_unknown() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(Arc::clone(&flag)));
        assert!(matches!(s.solve(), SatResult::Unknown));
        // Lowering the flag lets the same solver finish.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause([v[0]]);
        for i in 0..4 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        let m = s.solve().expect_sat();
        for l in v {
            assert!(m.value(l));
        }
    }

    #[test]
    fn implication_forces_conflict() {
        // (a -> b), (a -> !b), a  is UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        s.add_clause([v[0]]);
        assert!(!s.solve().is_sat());
    }

    /// Pigeonhole principle: n+1 pigeons in n holes is UNSAT.
    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        let mut var = vec![vec![Lit::positive(Var::from_index(0)); holes]; pigeons];
        for row in var.iter_mut() {
            for slot in row.iter_mut() {
                *slot = Lit::positive(s.new_var());
            }
        }
        // Every pigeon is in some hole.
        for row in &var {
            s.add_clause(row.clone());
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for (p1, row1) in var.iter().enumerate() {
                for row2 in var.iter().skip(p1 + 1) {
                    s.add_clause([!row1[h], !row2[h]]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        assert!(!pigeonhole(4, 3).solve().is_sat());
        assert!(!pigeonhole(5, 4).solve().is_sat());
    }

    #[test]
    fn pigeonhole_sat() {
        assert!(pigeonhole(3, 3).solve().is_sat());
        assert!(pigeonhole(4, 6).solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // An XOR chain: x0 ^ x1 = 1, x1 ^ x2 = 1, ...
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..7 {
            clauses.push(vec![v[i], v[i + 1]]);
            clauses.push(vec![!v[i], !v[i + 1]]);
        }
        clauses.push(vec![v[0]]);
        for c in &clauses {
            s.add_clause(c.clone());
        }
        let m = s.solve().expect_sat();
        for c in &clauses {
            assert!(c.iter().any(|&l| m.value(l)), "clause {c:?} unsatisfied");
        }
        // Check alternation forced by XOR chain.
        for (i, &lit) in v.iter().enumerate() {
            assert_eq!(m.value(lit), i % 2 == 0);
        }
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause([v[0], !v[0]]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[0], v[1]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(5, 4);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }

    #[test]
    fn solve_twice_is_stable() {
        let mut s = pigeonhole(3, 3);
        assert!(s.solve().is_sat());
        assert!(s.solve().is_sat());
        let mut u = pigeonhole(4, 3);
        assert!(!u.solve().is_sat());
        assert!(!u.solve().is_sat());
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        let b = Lit::positive(s.new_var());
        s.add_clause([a, b]);
        // Assuming ¬a forces b.
        let m = s.solve_with_assumptions(&[!a]).expect_sat();
        assert!(!m.value(a));
        assert!(m.value(b));
        // Assuming both negative is UNSAT…
        assert!(!s.solve_with_assumptions(&[!a, !b]).is_sat());
        // …but the solver is reusable afterwards (assumptions don't stick).
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[a]).is_sat());
    }

    #[test]
    fn assumptions_with_conflicting_pair() {
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        assert!(!s.solve_with_assumptions(&[a, !a]).is_sat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_on_pigeonhole() {
        // PHP(3,3) is SAT; fixing pigeon 0 to hole 0 keeps it SAT; fixing
        // two pigeons to the same hole makes it UNSAT.
        let mut s = pigeonhole(3, 3);
        let p0h0 = Lit::positive(Var::from_index(0));
        let p1h0 = Lit::positive(Var::from_index(3));
        assert!(s.solve_with_assumptions(&[p0h0]).is_sat());
        assert!(!s.solve_with_assumptions(&[p0h0, p1h0]).is_sat());
        assert!(s.solve().is_sat());
    }

    /// A 3-coloring instance on a small odd cycle plus constraints.
    #[test]
    fn graph_coloring() {
        // 5-cycle is 3-colorable but not 2-colorable.
        let n = 5;
        let colors = 3;
        let mut s = Solver::new();
        let mut var = vec![vec![]; n];
        for row in var.iter_mut() {
            for _ in 0..colors {
                row.push(Lit::positive(s.new_var()));
            }
        }
        for row in var.iter() {
            s.add_clause(row.clone());
        }
        for i in 0..n {
            let j = (i + 1) % n;
            for (a, b) in var[i].clone().into_iter().zip(var[j].clone()) {
                s.add_clause([!a, !b]);
            }
        }
        assert!(s.solve().is_sat());

        // 2-coloring version: UNSAT.
        let colors = 2;
        let mut s = Solver::new();
        let mut var = vec![vec![]; n];
        for row in var.iter_mut() {
            for _ in 0..colors {
                row.push(Lit::positive(s.new_var()));
            }
        }
        for row in var.iter() {
            s.add_clause(row.clone());
        }
        for i in 0..n {
            let j = (i + 1) % n;
            for (a, b) in var[i].clone().into_iter().zip(var[j].clone()) {
                s.add_clause([!a, !b]);
            }
        }
        assert!(!s.solve().is_sat());
    }
}
