//! A standalone CNF representation with DIMACS import/export and a
//! brute-force reference solver used to validate the CDCL solver in tests.

use crate::lit::{Lit, Var};
use crate::sat::{SatResult, Solver};
use std::fmt;

/// A formula in conjunctive normal form.
///
/// # Examples
///
/// ```
/// use rehearsal_solver::{Cnf, Lit};
/// let mut cnf = Cnf::new();
/// let a = Lit::positive(cnf.new_var());
/// let b = Lit::positive(cnf.new_var());
/// cnf.add_clause(vec![a, b]);
/// cnf.add_clause(vec![!a]);
/// assert!(cnf.solve().is_sat());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty CNF with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a clause (a disjunction of literals).
    pub fn add_clause(&mut self, clause: Vec<Lit>) {
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references an unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// The clauses of this CNF.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Solves this CNF with the CDCL solver.
    pub fn solve(&self) -> SatResult {
        let mut s = Solver::new();
        s.reserve_vars(self.num_vars);
        for c in &self.clauses {
            if !s.add_clause(c.iter().copied()) {
                return SatResult::Unsat;
            }
        }
        s.solve()
    }

    /// Exhaustively checks satisfiability by enumerating all assignments.
    ///
    /// Only usable for small variable counts; intended as a test oracle.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 24 variables.
    pub fn solve_brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        for bits in 0u64..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| bits >> i & 1 == 1).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Evaluates this CNF under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|l| {
                let v = assignment[l.var().index()];
                if l.is_positive() {
                    v
                } else {
                    !v
                }
            })
        })
    }

    /// Parses a DIMACS `cnf` problem.
    ///
    /// # Errors
    ///
    /// Returns a [`DimacsError`] when the header is missing/malformed or a
    /// literal is not an integer.
    pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
        let mut cnf = Cnf::new();
        let mut header_seen = false;
        let mut current: Vec<Lit> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(DimacsError::new(lineno + 1, "malformed problem line"));
                }
                let nv: usize = parts[1]
                    .parse()
                    .map_err(|_| DimacsError::new(lineno + 1, "bad variable count"))?;
                cnf.reserve_vars(nv);
                header_seen = true;
                continue;
            }
            if !header_seen {
                return Err(DimacsError::new(lineno + 1, "clause before problem line"));
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError::new(lineno + 1, "bad literal"))?;
                if n == 0 {
                    cnf.add_clause(std::mem::take(&mut current));
                } else {
                    let lit = Lit::from_dimacs(n);
                    if lit.var().index() >= cnf.num_vars {
                        cnf.reserve_vars(lit.var().index() + 1);
                    }
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            cnf.add_clause(current);
        }
        Ok(cnf)
    }

    /// Renders in DIMACS format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }
}

/// An error from DIMACS parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    line: usize,
    message: String,
}

impl DimacsError {
    fn new(line: usize, message: impl Into<String>) -> DimacsError {
        DimacsError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses().len(), 2);
        let again = Cnf::from_dimacs(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn dimacs_error_reporting() {
        let err = Cnf::from_dimacs("p cnf x 2\n").unwrap_err();
        assert_eq!(err.line(), 1);
        let err = Cnf::from_dimacs("1 2 0\n").unwrap_err();
        assert!(err.to_string().contains("before problem line"));
    }

    #[test]
    fn brute_force_agrees_on_unsat() {
        let text = "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert!(cnf.solve_brute_force().is_none());
        assert!(!cnf.solve().is_sat());
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut cnf = Cnf::new();
        let a = Lit::positive(cnf.new_var());
        let b = Lit::positive(cnf.new_var());
        cnf.add_clause(vec![a, b]);
        cnf.add_clause(vec![!a]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
