//! A bounded shared pool of learnt clauses.
//!
//! Parallel explorer workers each own a persistent incremental solver
//! (see [`crate::ctx::Ctx::solve_assuming`]). Their permanent clause
//! databases agree on a shared variable prefix — the finite-domain
//! one-hot bits and background assertions created before exploration
//! starts — so short learnt clauses over that prefix proved by one worker
//! hold for every worker. The pool is the exchange point: workers
//! [`publish`](ClausePool::publish) their exportable clauses periodically
//! and [`fetch_since`](ClausePool::fetch_since) everything published by
//! siblings since their last visit, tracked by a per-worker generation
//! cursor.
//!
//! The pool is append-only and bounded: once `capacity` clauses are
//! stored, further publishes are dropped (sharing is an optimization;
//! losing a clause never affects verdicts). Duplicate clauses are
//! filtered so a popular clause is shipped once.

use crate::lit::Lit;
use std::collections::HashSet;
use std::sync::Mutex;

/// Default clause capacity for explorer pools.
pub const DEFAULT_POOL_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct PoolInner {
    clauses: Vec<Vec<Lit>>,
    seen: HashSet<Vec<Lit>>,
    dropped: u64,
}

/// A bounded, append-only exchange of learnt clauses between sibling
/// solvers (see the [module documentation](self)).
#[derive(Debug)]
pub struct ClausePool {
    inner: Mutex<PoolInner>,
    capacity: usize,
}

impl Default for ClausePool {
    fn default() -> Self {
        ClausePool::new(DEFAULT_POOL_CAPACITY)
    }
}

impl ClausePool {
    /// An empty pool holding at most `capacity` clauses.
    pub fn new(capacity: usize) -> ClausePool {
        ClausePool {
            inner: Mutex::new(PoolInner::default()),
            capacity,
        }
    }

    /// Publishes clauses into the pool; returns how many were accepted
    /// (duplicates and over-capacity clauses are dropped). Literals are
    /// sorted for canonical duplicate detection — order within a clause
    /// is semantically irrelevant.
    pub fn publish(&self, clauses: impl IntoIterator<Item = Vec<Lit>>) -> usize {
        let mut inner = self.inner.lock().expect("clause pool poisoned");
        let mut accepted = 0;
        for mut c in clauses {
            if c.is_empty() {
                continue;
            }
            c.sort_unstable();
            c.dedup();
            if inner.clauses.len() >= self.capacity {
                inner.dropped += 1;
                continue;
            }
            if inner.seen.insert(c.clone()) {
                inner.clauses.push(c);
                accepted += 1;
            }
        }
        accepted
    }

    /// Everything published since generation `cursor` (a value previously
    /// returned by this method, or 0 for "from the beginning"), plus the
    /// new cursor. The pool is append-only, so cursors stay valid.
    pub fn fetch_since(&self, cursor: usize) -> (Vec<Vec<Lit>>, usize) {
        let inner = self.inner.lock().expect("clause pool poisoned");
        let fresh = inner.clauses[cursor.min(inner.clauses.len())..].to_vec();
        (fresh, inner.clauses.len())
    }

    /// Number of clauses currently stored.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("clause pool poisoned")
            .clauses
            .len()
    }

    /// Whether the pool holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of publishes dropped because the pool was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("clause pool poisoned").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn publish_and_fetch_with_cursors() {
        let pool = ClausePool::new(16);
        assert!(pool.is_empty());
        assert_eq!(pool.publish([vec![lit(0), lit(1)]]), 1);
        let (batch, cur) = pool.fetch_since(0);
        assert_eq!(batch.len(), 1);
        assert_eq!(cur, 1);
        // Nothing new since the cursor.
        let (batch, cur2) = pool.fetch_since(cur);
        assert!(batch.is_empty());
        assert_eq!(cur2, 1);
        // A later publish shows up from the old cursor only.
        assert_eq!(pool.publish([vec![lit(2)]]), 1);
        let (batch, _) = pool.fetch_since(cur);
        assert_eq!(batch, vec![vec![lit(2)]]);
    }

    #[test]
    fn duplicates_are_filtered() {
        let pool = ClausePool::new(16);
        assert_eq!(pool.publish([vec![lit(0), lit(1)]]), 1);
        // Same clause, different literal order: canonicalized away.
        assert_eq!(pool.publish([vec![lit(1), lit(0)]]), 0);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_bounds_the_pool() {
        let pool = ClausePool::new(2);
        assert_eq!(pool.publish([vec![lit(0)], vec![lit(1)], vec![lit(2)]]), 2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.dropped(), 1);
        // Empty clauses are never stored.
        assert_eq!(pool.publish([vec![]]), 0);
    }
}
