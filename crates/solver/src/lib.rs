//! A from-scratch SAT/finite-domain solving substrate for Rehearsal.
//!
//! The original Rehearsal (PLDI 2016) discharges its determinacy and
//! idempotency queries with the Z3 SMT solver. The formulas it generates are
//! *effectively propositional*: every FS program manipulates a statically
//! known, finite set of paths, and each path's state ranges over a finite
//! domain. This crate therefore provides an exact replacement built from
//! scratch:
//!
//! * [`sat`] — a CDCL SAT solver (two-watched literals, first-UIP learning,
//!   VSIDS, phase saving, Luby restarts, clause-database reduction);
//! * [`cnf`] — a CNF container with DIMACS import/export and a brute-force
//!   oracle for testing;
//! * [`ctx`] — a hash-consed formula/term context with finite-domain
//!   variables, one-hot grounding, and Tseitin CNF conversion.
//!
//! # Examples
//!
//! ```
//! use rehearsal_solver::Ctx;
//!
//! let mut ctx = Ctx::new();
//! let x = ctx.fd_var(&[0, 1, 2]);
//! let y = ctx.fd_var(&[1, 2, 3]);
//! let eq = ctx.eq_terms(x, y);
//! let model = ctx.solve(eq).expect("x and y can agree on 1 or 2");
//! assert_eq!(model.term_value_in(&ctx, x), model.term_value_in(&ctx, y));
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod ctx;
pub mod lit;
pub mod pool;
pub mod sat;

pub use cnf::{Cnf, DimacsError};
pub use ctx::{BVar, Ctx, CtxStats, Formula, GroundingStats, ModelView, SolveTimeout, Term};
pub use lit::{LBool, Lit, Var};
pub use pool::ClausePool;
pub use sat::{Model, SatResult, Solver, SolverStats};
