//! Boolean variables and literals.
//!
//! A [`Var`] is an index into the solver's variable table. A [`Lit`] packs a
//! variable and a sign into a single `u32` (`var << 1 | sign`), following the
//! MiniSat convention so that a literal and its negation are adjacent and the
//! literal itself can index watch lists.

use std::fmt;

/// A propositional variable.
///
/// Variables are created by [`Solver::new_var`](crate::sat::Solver::new_var)
/// and are valid only for the solver (or formula context) that created them.
///
/// # Examples
///
/// ```
/// use rehearsal_solver::{Lit, Var};
/// let v = Var::from_index(3);
/// assert_eq!(Lit::positive(v).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from a raw index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// Returns the raw index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// # Examples
///
/// ```
/// use rehearsal_solver::{Lit, Var};
/// let v = Var::from_index(0);
/// let p = Lit::positive(v);
/// assert_eq!(!p, Lit::negative(v));
/// assert!(!(!p).is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is positive (an un-negated variable).
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The raw code of this literal, usable as an index into watch lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its raw code.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts to the DIMACS convention: 1-based, negative numbers for
    /// negated variables.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a literal from the DIMACS convention.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (DIMACS uses 0 as a clause terminator).
    pub fn from_dimacs(n: i64) -> Lit {
        assert!(n != 0, "DIMACS literal must be non-zero");
        let var = Var((n.unsigned_abs() - 1) as u32);
        Lit::new(var, n > 0)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A ternary truth value used for partial assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    Undef,
}

impl LBool {
    /// Builds from a `bool`.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negates; `Undef` stays `Undef`.
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_conventions() {
        assert_eq!(Lit::from_dimacs(1), Lit::positive(Var::from_index(0)));
        assert_eq!(Lit::from_dimacs(-3), Lit::negative(Var::from_index(2)));
        assert_eq!(Lit::from_dimacs(5).to_dimacs(), 5);
        assert_eq!(Lit::from_dimacs(-5).to_dimacs(), -5);
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_negate() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
    }
}
