//! A hash-consed formula and finite-domain term context.
//!
//! This layer plays the role of the SMT solver interface in the original
//! Rehearsal: formulas are boolean combinations (with if-then-else) over
//! boolean variables and equalities of *finite-domain terms*. A finite-domain
//! variable ranges over an explicit, per-variable set of values (`u32` codes
//! whose meaning is assigned by the client — Rehearsal uses them for path
//! states such as "does not exist", "directory", or "file with content c").
//!
//! Solving grounds each finite-domain variable to a one-hot vector of boolean
//! variables (with exactly-one side constraints), Tseitin-transforms the
//! formula DAG to CNF, and runs the CDCL solver from [`crate::sat`].
//!
//! Because Rehearsal's theory is effectively propositional over
//! statically-known finite domains, this grounding is an *exact* decision
//! procedure: SAT/UNSAT verdicts agree with what an SMT solver would report.
//!
//! # Examples
//!
//! ```
//! use rehearsal_solver::Ctx;
//!
//! let mut ctx = Ctx::new();
//! // A variable over the domain {10, 20, 30}.
//! let x = ctx.fd_var(&[10, 20, 30]);
//! let ten = ctx.bit(x, 10);
//! let twenty = ctx.bit(x, 20);
//! let not_ten = ctx.not(ten);
//! let not_twenty = ctx.not(twenty);
//! let f = ctx.and2(not_ten, not_twenty);
//! let model = ctx.solve(f).expect("satisfiable");
//! assert_eq!(model.term_value_in(&ctx, x), 30);
//! ```

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::sat::{Model, SatResult, Solver, SolverStats};
use std::collections::HashMap;
use std::fmt;

/// A hash-consed boolean formula handle.
///
/// Handles are only meaningful together with the [`Ctx`] that created them.
/// Because of hash-consing, structurally identical formulas get identical
/// handles, so `==` on handles is structural equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Formula(u32);

/// A boolean variable in a [`Ctx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BVar(u32);

/// A hash-consed finite-domain term handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(u32);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FNode {
    True,
    False,
    Var(BVar),
    Not(Formula),
    And(Box<[Formula]>),
    Or(Box<[Formula]>),
    Ite(Formula, Formula, Formula),
    Iff(Formula, Formula),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TNode {
    /// A constant value.
    Val(u32),
    /// A finite-domain variable (index into `Ctx::fd_vars`).
    Var(u32),
    /// `if c then t else e`.
    Ite(Formula, Term, Term),
}

/// FNV-128 offset basis: the starting value for structural digests.
const DIGEST_SEED: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// One FNV-128-style mixing step: fold `word` into the accumulator.
/// Used by [`Ctx::formula_digest`]/[`Ctx::term_digest`] to combine node
/// tags, variable indices, and child digests.
fn digest_mix(acc: u128, word: u128) -> u128 {
    const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    (acc ^ word).wrapping_mul(FNV_PRIME)
}

#[derive(Debug)]
struct FdVarInfo {
    values: Vec<u32>,
    /// One boolean indicator per value (one-hot encoding).
    bits: Vec<BVar>,
}

/// Statistics about the size of the encoding, used in benchmark reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Number of distinct formula nodes.
    pub formula_nodes: usize,
    /// Number of distinct finite-domain term nodes.
    pub term_nodes: usize,
    /// Number of boolean variables (including one-hot indicator bits).
    pub bool_vars: usize,
    /// Number of finite-domain variables.
    pub fd_vars: usize,
    /// Formula interning requests answered by an existing (hash-consed)
    /// node instead of allocating a new one.
    pub formula_dedup_hits: u64,
    /// Term interning requests answered by an existing node.
    pub term_dedup_hits: u64,
}

impl CtxStats {
    /// Fraction of interning requests served by sharing (0.0 when nothing
    /// has been interned). High ratios mean the Tseitin transform encodes
    /// proportionally fewer distinct nodes.
    pub fn dedup_ratio(&self) -> f64 {
        let fresh = (self.formula_nodes + self.term_nodes) as u64;
        let hits = self.formula_dedup_hits + self.term_dedup_hits;
        if fresh + hits == 0 {
            return 0.0;
        }
        hits as f64 / (fresh + hits) as f64
    }

    /// Deterministically folds another context's stats into this one:
    /// size gauges (node, variable counts) take the maximum, work
    /// counters (dedup hits) sum. Used to merge per-thread explorer
    /// contexts into one report, so merged numbers do not depend on the
    /// order workers finish.
    pub fn merge(&mut self, other: &CtxStats) {
        self.formula_nodes = self.formula_nodes.max(other.formula_nodes);
        self.term_nodes = self.term_nodes.max(other.term_nodes);
        self.bool_vars = self.bool_vars.max(other.bool_vars);
        self.fd_vars = self.fd_vars.max(other.fd_vars);
        self.formula_dedup_hits += other.formula_dedup_hits;
        self.term_dedup_hits += other.term_dedup_hits;
    }
}

/// Grounding statistics for the incremental solving path
/// ([`Ctx::solve_assuming`]): how much CNF was emitted exactly once and
/// then reused across queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundingStats {
    /// Formula nodes Tseitin-grounded to CNF (each exactly once).
    pub grounded_nodes: u64,
    /// Grounding requests answered by an already-grounded node.
    pub reused_nodes: u64,
    /// Clauses added to the persistent solver.
    pub grounded_clauses: u64,
}

impl GroundingStats {
    /// Fraction of grounding requests served by reuse (0.0 before any
    /// grounding). High ratios mean later queries ride on CNF — and learnt
    /// clauses — produced for earlier ones.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.grounded_nodes + self.reused_nodes;
        if total == 0 {
            return 0.0;
        }
        self.reused_nodes as f64 / total as f64
    }

    /// Sums another context's grounding counters into this one (all three
    /// fields are work counters).
    pub fn merge(&mut self, other: &GroundingStats) {
        self.grounded_nodes += other.grounded_nodes;
        self.reused_nodes += other.reused_nodes;
        self.grounded_clauses += other.grounded_clauses;
    }
}

/// The persistent incremental-solving state: one live CDCL solver whose
/// clause database (including everything it has learnt) survives across
/// queries. Formula nodes are grounded to CNF exactly once; per-query
/// roots are activated via assumption literals.
#[derive(Debug, Default)]
struct Incremental {
    solver: Solver,
    /// CNF literal of every grounded formula node.
    lit_of: HashMap<Formula, Lit>,
    /// A literal asserted true at the top level (grounds the constants).
    lit_true: Option<Lit>,
    /// Prefix of `Ctx::side_constraints` already asserted permanently.
    grounded_side: usize,
    /// Top-level contradiction in the permanent clauses: every query is
    /// UNSAT from here on.
    unsat: bool,
    stats: GroundingStats,
}

/// The formula-building and solving context.
///
/// See the [module documentation](self) for an overview.
#[derive(Debug, Default)]
pub struct Ctx {
    fnodes: Vec<FNode>,
    fhash: HashMap<FNode, Formula>,
    tnodes: Vec<TNode>,
    thash: HashMap<TNode, Term>,
    n_bool_vars: u32,
    fd_vars: Vec<FdVarInfo>,
    /// Exactly-one constraints for finite-domain variables, conjoined with
    /// every query.
    side_constraints: Vec<Formula>,
    /// Memo table for `bit(term, value)`.
    bit_memo: HashMap<(Term, u32), Formula>,
    /// Memo table for the set of values a term can take.
    possible_memo: HashMap<Term, std::rc::Rc<Vec<u32>>>,
    /// Memo tables for the structural digests ([`Ctx::formula_digest`],
    /// [`Ctx::term_digest`]).
    fdigest_memo: HashMap<Formula, u128>,
    tdigest_memo: HashMap<Term, u128>,
    /// Hash-consing hit counters (see [`CtxStats`]).
    formula_hits: u64,
    term_hits: u64,
    /// The persistent solver for [`Ctx::solve_assuming`].
    inc: Incremental,
}

impl Ctx {
    /// Creates an empty context containing the constants `true` and `false`.
    pub fn new() -> Ctx {
        let mut ctx = Ctx::default();
        ctx.intern_f(FNode::False); // index 0
        ctx.intern_f(FNode::True); // index 1
        ctx
    }

    fn intern_f(&mut self, node: FNode) -> Formula {
        if let Some(&f) = self.fhash.get(&node) {
            self.formula_hits += 1;
            return f;
        }
        let f = Formula(self.fnodes.len() as u32);
        self.fnodes.push(node.clone());
        self.fhash.insert(node, f);
        f
    }

    fn intern_t(&mut self, node: TNode) -> Term {
        if let Some(&t) = self.thash.get(&node) {
            self.term_hits += 1;
            return t;
        }
        let t = Term(self.tnodes.len() as u32);
        self.tnodes.push(node.clone());
        self.thash.insert(node, t);
        t
    }

    /// The constant `false`.
    pub fn ff(&self) -> Formula {
        Formula(0)
    }

    /// The constant `true`.
    pub fn tt(&self) -> Formula {
        Formula(1)
    }

    /// Whether `f` is the constant `true`.
    pub fn is_true(&self, f: Formula) -> bool {
        f == self.tt()
    }

    /// Whether `f` is the constant `false`.
    pub fn is_false(&self, f: Formula) -> bool {
        f == self.ff()
    }

    /// Allocates a fresh boolean variable and returns it as a formula.
    pub fn fresh_bool(&mut self) -> Formula {
        let v = BVar(self.n_bool_vars);
        self.n_bool_vars += 1;
        self.intern_f(FNode::Var(v))
    }

    /// Negation.
    pub fn not(&mut self, f: Formula) -> Formula {
        if f == self.tt() {
            return self.ff();
        }
        if f == self.ff() {
            return self.tt();
        }
        if let FNode::Not(inner) = self.fnodes[f.0 as usize] {
            return inner;
        }
        self.intern_f(FNode::Not(f))
    }

    /// Binary conjunction.
    pub fn and2(&mut self, a: Formula, b: Formula) -> Formula {
        self.and([a, b])
    }

    /// Binary disjunction.
    pub fn or2(&mut self, a: Formula, b: Formula) -> Formula {
        self.or([a, b])
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: Formula, b: Formula) -> Formula {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// N-ary conjunction with flattening, deduplication, and constant and
    /// complement simplification.
    pub fn and(&mut self, fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut children: Vec<Formula> = Vec::new();
        for f in fs {
            if f == self.ff() {
                return self.ff();
            }
            if f == self.tt() {
                continue;
            }
            if let FNode::And(inner) = &self.fnodes[f.0 as usize] {
                children.extend(inner.iter().copied());
            } else {
                children.push(f);
            }
        }
        children.sort();
        children.dedup();
        // Complement detection: x and ¬x together.
        let set: std::collections::HashSet<Formula> = children.iter().copied().collect();
        for &c in &children {
            if let FNode::Not(inner) = self.fnodes[c.0 as usize] {
                if set.contains(&inner) {
                    return self.ff();
                }
            }
        }
        match children.len() {
            0 => self.tt(),
            1 => children[0],
            _ => self.intern_f(FNode::And(children.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with flattening, deduplication, and constant and
    /// complement simplification.
    pub fn or(&mut self, fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut children: Vec<Formula> = Vec::new();
        for f in fs {
            if f == self.tt() {
                return self.tt();
            }
            if f == self.ff() {
                continue;
            }
            if let FNode::Or(inner) = &self.fnodes[f.0 as usize] {
                children.extend(inner.iter().copied());
            } else {
                children.push(f);
            }
        }
        children.sort();
        children.dedup();
        let set: std::collections::HashSet<Formula> = children.iter().copied().collect();
        for &c in &children {
            if let FNode::Not(inner) = self.fnodes[c.0 as usize] {
                if set.contains(&inner) {
                    return self.tt();
                }
            }
        }
        match children.len() {
            0 => self.ff(),
            1 => children[0],
            _ => self.intern_f(FNode::Or(children.into_boxed_slice())),
        }
    }

    /// If-then-else on formulas.
    pub fn ite(&mut self, c: Formula, t: Formula, e: Formula) -> Formula {
        if c == self.tt() {
            return t;
        }
        if c == self.ff() {
            return e;
        }
        if t == e {
            return t;
        }
        if t == self.tt() && e == self.ff() {
            return c;
        }
        if t == self.ff() && e == self.tt() {
            return self.not(c);
        }
        if t == self.tt() {
            return self.or2(c, e);
        }
        if t == self.ff() {
            let nc = self.not(c);
            return self.and2(nc, e);
        }
        if e == self.tt() {
            let nc = self.not(c);
            return self.or2(nc, t);
        }
        if e == self.ff() {
            return self.and2(c, t);
        }
        // Common-conjunct factoring: `ite(c, x ∧ R, x) ≡ x ∧ (c → R)` and
        // `ite(c, x, x ∧ R) ≡ x ∧ (¬c → R)`. This is how symbolic `ok`
        // formulas grow (`ite(cond, ok ∧ pre, ok)` per guarded operation);
        // rewriting them into flat conjunctions lets the sorted n-ary
        // `and` canonicalize away evaluation order, so commuting resource
        // orders reconverge to *structurally identical* states — the
        // property the explorer's state cache and output dedup feed on.
        let factored = |ctx: &Ctx, whole: Formula, part: Formula| -> Option<Vec<Formula>> {
            let FNode::And(cs) = &ctx.fnodes[whole.0 as usize] else {
                return None;
            };
            if cs.contains(&part) {
                return Some(cs.iter().copied().filter(|&x| x != part).collect());
            }
            // `part` may itself be a conjunction that `whole` extends
            // (n-ary `and` flattens, so the handle of the smaller
            // conjunction never appears verbatim among the children).
            if let FNode::And(ps) = &ctx.fnodes[part.0 as usize] {
                if ps.len() < cs.len() && ps.iter().all(|p| cs.contains(p)) {
                    return Some(cs.iter().copied().filter(|x| !ps.contains(x)).collect());
                }
            }
            None
        };
        if let Some(rest) = factored(self, t, e) {
            let r = self.and(rest);
            let nc = self.not(c);
            let guarded = self.or2(nc, r);
            return self.and2(e, guarded);
        }
        if let Some(rest) = factored(self, e, t) {
            let r = self.and(rest);
            let guarded = self.or2(c, r);
            return self.and2(t, guarded);
        }
        self.intern_f(FNode::Ite(c, t, e))
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: Formula, b: Formula) -> Formula {
        if a == b {
            return self.tt();
        }
        if a == self.tt() {
            return b;
        }
        if a == self.ff() {
            return self.not(b);
        }
        if b == self.tt() {
            return a;
        }
        if b == self.ff() {
            return self.not(a);
        }
        if self.not(a) == b {
            return self.ff();
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern_f(FNode::Iff(a, b))
    }

    /// Registers a background constraint conjoined with every query solved
    /// through this context (like an SMT `assert`).
    pub fn assert_background(&mut self, f: Formula) {
        self.side_constraints.push(f);
    }

    /// Allocates a finite-domain variable over the given (non-empty) set of
    /// values, registering its one-hot exactly-one side constraint.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn fd_var(&mut self, values: &[u32]) -> Term {
        assert!(!values.is_empty(), "finite-domain variable needs values");
        let mut vals: Vec<u32> = values.to_vec();
        vals.sort_unstable();
        vals.dedup();
        let bits: Vec<BVar> = (0..vals.len())
            .map(|_| {
                let v = BVar(self.n_bool_vars);
                self.n_bool_vars += 1;
                v
            })
            .collect();
        let idx = self.fd_vars.len() as u32;
        // Exactly-one constraint: at least one, pairwise at most one.
        let bit_fs: Vec<Formula> = bits.iter().map(|&b| self.intern_f(FNode::Var(b))).collect();
        let alo = self.or(bit_fs.iter().copied());
        self.side_constraints.push(alo);
        for i in 0..bit_fs.len() {
            for j in (i + 1)..bit_fs.len() {
                let ni = self.not(bit_fs[i]);
                let nj = self.not(bit_fs[j]);
                let amo = self.or2(ni, nj);
                self.side_constraints.push(amo);
            }
        }
        self.fd_vars.push(FdVarInfo { values: vals, bits });
        self.intern_t(TNode::Var(idx))
    }

    /// A constant finite-domain term.
    pub fn val(&mut self, v: u32) -> Term {
        self.intern_t(TNode::Val(v))
    }

    /// If-then-else on terms.
    pub fn tite(&mut self, c: Formula, t: Term, e: Term) -> Term {
        if c == self.tt() {
            return t;
        }
        if c == self.ff() {
            return e;
        }
        if t == e {
            return t;
        }
        self.intern_t(TNode::Ite(c, t, e))
    }

    /// The set of values `t` may evaluate to (sorted, deduplicated).
    pub fn possible_values(&mut self, t: Term) -> std::rc::Rc<Vec<u32>> {
        if let Some(vs) = self.possible_memo.get(&t) {
            return vs.clone();
        }
        let vs = match self.tnodes[t.0 as usize].clone() {
            TNode::Val(v) => vec![v],
            TNode::Var(i) => self.fd_vars[i as usize].values.clone(),
            TNode::Ite(_, a, b) => {
                let va = self.possible_values(a);
                let vb = self.possible_values(b);
                let mut out: Vec<u32> = va.iter().chain(vb.iter()).copied().collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        };
        let rc = std::rc::Rc::new(vs);
        self.possible_memo.insert(t, rc.clone());
        rc
    }

    /// The formula "`t` evaluates to `v`".
    pub fn bit(&mut self, t: Term, v: u32) -> Formula {
        if let Some(&f) = self.bit_memo.get(&(t, v)) {
            return f;
        }
        let f = match self.tnodes[t.0 as usize].clone() {
            TNode::Val(c) => {
                if c == v {
                    self.tt()
                } else {
                    self.ff()
                }
            }
            TNode::Var(i) => {
                let info = &self.fd_vars[i as usize];
                match info.values.binary_search(&v) {
                    Ok(pos) => {
                        let b = info.bits[pos];
                        self.intern_f(FNode::Var(b))
                    }
                    Err(_) => self.ff(),
                }
            }
            TNode::Ite(c, a, b) => {
                let ba = self.bit(a, v);
                let bb = self.bit(b, v);
                self.ite(c, ba, bb)
            }
        };
        self.bit_memo.insert((t, v), f);
        f
    }

    /// The formula "`t1` and `t2` evaluate to the same value".
    pub fn eq_terms(&mut self, t1: Term, t2: Term) -> Formula {
        if t1 == t2 {
            return self.tt();
        }
        let v1 = self.possible_values(t1);
        let v2 = self.possible_values(t2);
        let mut disjuncts = Vec::new();
        let mut i = 0;
        let mut j = 0;
        while i < v1.len() && j < v2.len() {
            match v1[i].cmp(&v2[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = v1[i];
                    let b1 = self.bit(t1, v);
                    let b2 = self.bit(t2, v);
                    let both = self.and2(b1, b2);
                    disjuncts.push(both);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.or(disjuncts)
    }

    /// The formula "`t1` and `t2` evaluate to different values".
    pub fn neq_terms(&mut self, t1: Term, t2: Term) -> Formula {
        let eq = self.eq_terms(t1, t2);
        self.not(eq)
    }

    /// Encoding-size statistics.
    pub fn stats(&self) -> CtxStats {
        CtxStats {
            formula_nodes: self.fnodes.len(),
            term_nodes: self.tnodes.len(),
            bool_vars: self.n_bool_vars as usize,
            fd_vars: self.fd_vars.len(),
            formula_dedup_hits: self.formula_hits,
            term_dedup_hits: self.term_hits,
        }
    }

    /// Converts `root ∧ side-constraints` to CNF by Tseitin transformation.
    ///
    /// Returns the CNF; boolean variable `BVar(i)` maps to CNF variable `i`.
    pub fn to_cnf(&mut self, root: Formula) -> Cnf {
        let side = self.side_constraints.clone();
        let mut goals = vec![root];
        goals.extend(side);
        let goal = self.and(goals);

        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.n_bool_vars as usize);
        let mut lit_of: HashMap<Formula, Lit> = HashMap::new();

        if goal == self.ff() {
            // Force unsatisfiability explicitly.
            cnf.add_clause(vec![]);
            return cnf;
        }
        if goal == self.tt() {
            return cnf;
        }

        // Iterative post-order traversal of the formula DAG.
        let mut stack: Vec<(Formula, bool)> = vec![(goal, false)];
        while let Some((f, expanded)) = stack.pop() {
            if lit_of.contains_key(&f) {
                continue;
            }
            let node = self.fnodes[f.0 as usize].clone();
            if !expanded {
                stack.push((f, true));
                match &node {
                    FNode::True | FNode::False | FNode::Var(_) => {}
                    FNode::Not(a) => stack.push((*a, false)),
                    FNode::And(cs) | FNode::Or(cs) => {
                        for &c in cs.iter() {
                            stack.push((c, false));
                        }
                    }
                    FNode::Ite(c, t, e) => {
                        stack.push((*c, false));
                        stack.push((*t, false));
                        stack.push((*e, false));
                    }
                    FNode::Iff(a, b) => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                }
                continue;
            }
            let lit = match node {
                FNode::True => {
                    let v = cnf.new_var();
                    cnf.add_clause(vec![Lit::positive(v)]);
                    Lit::positive(v)
                }
                FNode::False => {
                    let v = cnf.new_var();
                    cnf.add_clause(vec![Lit::negative(v)]);
                    Lit::positive(v)
                }
                FNode::Var(b) => Lit::positive(Var::from_index(b.0 as usize)),
                FNode::Not(a) => !lit_of[&a],
                FNode::And(cs) => {
                    let x = Lit::positive(cnf.new_var());
                    let mut big = vec![x];
                    for c in cs.iter() {
                        let cl = lit_of[c];
                        cnf.add_clause(vec![!x, cl]);
                        big.push(!cl);
                    }
                    cnf.add_clause(big);
                    x
                }
                FNode::Or(cs) => {
                    let x = Lit::positive(cnf.new_var());
                    let mut big = vec![!x];
                    for c in cs.iter() {
                        let cl = lit_of[c];
                        cnf.add_clause(vec![x, !cl]);
                        big.push(cl);
                    }
                    cnf.add_clause(big);
                    x
                }
                FNode::Ite(c, t, e) => {
                    let x = Lit::positive(cnf.new_var());
                    let (lc, lt, le) = (lit_of[&c], lit_of[&t], lit_of[&e]);
                    cnf.add_clause(vec![!x, !lc, lt]);
                    cnf.add_clause(vec![!x, lc, le]);
                    cnf.add_clause(vec![x, !lc, !lt]);
                    cnf.add_clause(vec![x, lc, !le]);
                    x
                }
                FNode::Iff(a, b) => {
                    let x = Lit::positive(cnf.new_var());
                    let (la, lb) = (lit_of[&a], lit_of[&b]);
                    cnf.add_clause(vec![!x, !la, lb]);
                    cnf.add_clause(vec![!x, la, !lb]);
                    cnf.add_clause(vec![x, la, lb]);
                    cnf.add_clause(vec![x, !la, !lb]);
                    x
                }
            };
            lit_of.insert(f, lit);
        }
        cnf.add_clause(vec![lit_of[&goal]]);
        cnf
    }

    /// Decides satisfiability of `root` (conjoined with the finite-domain
    /// side constraints) and returns a model if satisfiable.
    pub fn solve(&mut self, root: Formula) -> Option<ModelView> {
        self.solve_with_deadline(root, None)
            .expect("no deadline was set")
    }

    /// Like [`Ctx::solve`] but gives up at `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveTimeout`] when the deadline is exceeded.
    pub fn solve_with_deadline(
        &mut self,
        root: Formula,
        deadline: Option<std::time::Instant>,
    ) -> Result<Option<ModelView>, SolveTimeout> {
        self.solve_with_budget(root, deadline, None)
    }

    /// Like [`Ctx::solve_with_deadline`], additionally polling a
    /// cooperative-cancellation flag *inside* the SAT search loop, so a
    /// scheduler can interrupt a long solve without waiting for the
    /// deadline.
    ///
    /// # Errors
    ///
    /// Returns [`SolveTimeout`] when the deadline is exceeded or the flag
    /// is raised.
    pub fn solve_with_budget(
        &mut self,
        root: Formula,
        deadline: Option<std::time::Instant>,
        interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) -> Result<Option<ModelView>, SolveTimeout> {
        let _span = rehearsal_trace::span_cat("solve", "solver");
        rehearsal_trace::counter_add("sat.queries", 1);
        let cnf = self.to_cnf(root);
        let mut solver = Solver::new();
        solver.set_deadline(deadline);
        solver.set_interrupt(interrupt);
        solver.reserve_vars(cnf.num_vars());
        for c in cnf.clauses() {
            if !solver.add_clause(c.iter().copied()) {
                return Ok(None);
            }
        }
        match solver.solve() {
            SatResult::Sat(m) => Ok(Some(ModelView { model: m })),
            SatResult::Unsat => Ok(None),
            SatResult::Unknown => Err(SolveTimeout),
        }
    }

    /// Allocates a fresh Tseitin auxiliary variable for the persistent
    /// solver. Auxiliaries draw from the same counter as client booleans
    /// ([`Ctx::fresh_bool`]/[`Ctx::fd_var`] one-hot bits), so the identity
    /// mapping `BVar(i) ↔ solver var i` — which model decoding relies on —
    /// holds for the whole lifetime of the context.
    fn aux_var(&mut self) -> Var {
        let v = Var::from_index(self.n_bool_vars as usize);
        self.n_bool_vars += 1;
        self.inc.solver.reserve_vars(self.n_bool_vars as usize);
        v
    }

    /// Adds a permanent clause to the persistent solver, tracking stats
    /// and top-level contradiction.
    fn inc_add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.inc.stats.grounded_clauses += 1;
        if !self.inc.solver.add_clause(lits) {
            self.inc.unsat = true;
        }
    }

    /// The literal asserted true at the top level (grounds `tt`/`ff`).
    fn inc_lit_true(&mut self) -> Lit {
        if let Some(l) = self.inc.lit_true {
            return l;
        }
        let l = Lit::positive(self.aux_var());
        self.inc_add_clause([l]);
        self.inc.lit_true = Some(l);
        l
    }

    /// Grounds `f` into the persistent solver, emitting Tseitin CNF for
    /// every not-yet-grounded node exactly once, and returns `f`'s
    /// activation literal. Hash-consing makes this a no-op for any node a
    /// previous query already grounded.
    fn ground(&mut self, root: Formula) -> Lit {
        // Client booleans allocated since the last grounding must exist in
        // the solver before clauses mention them.
        self.inc.solver.reserve_vars(self.n_bool_vars as usize);
        // Nodes first encountered during *this* call: sharing within one
        // query's DAG walk is not "reuse" in the cross-query sense the
        // reuse ratio reports, so it must not inflate the counter.
        let mut seen_this_call: std::collections::HashSet<Formula> =
            std::collections::HashSet::new();
        let mut stack: Vec<(Formula, bool)> = vec![(root, false)];
        while let Some((f, expanded)) = stack.pop() {
            if !expanded && !seen_this_call.insert(f) {
                // A duplicate push from another parent in this same walk.
                continue;
            }
            if self.inc.lit_of.contains_key(&f) {
                if !expanded {
                    self.inc.stats.reused_nodes += 1;
                }
                continue;
            }
            let node = self.fnodes[f.0 as usize].clone();
            if !expanded {
                stack.push((f, true));
                match &node {
                    FNode::True | FNode::False | FNode::Var(_) => {}
                    FNode::Not(a) => stack.push((*a, false)),
                    FNode::And(cs) | FNode::Or(cs) => {
                        for &c in cs.iter() {
                            stack.push((c, false));
                        }
                    }
                    FNode::Ite(c, t, e) => {
                        stack.push((*c, false));
                        stack.push((*t, false));
                        stack.push((*e, false));
                    }
                    FNode::Iff(a, b) => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                }
                continue;
            }
            let lit = match node {
                FNode::True => self.inc_lit_true(),
                FNode::False => !self.inc_lit_true(),
                FNode::Var(b) => Lit::positive(Var::from_index(b.0 as usize)),
                FNode::Not(a) => !self.inc.lit_of[&a],
                FNode::And(cs) => {
                    let x = Lit::positive(self.aux_var());
                    let mut big = vec![x];
                    for c in cs.iter() {
                        let cl = self.inc.lit_of[c];
                        self.inc_add_clause([!x, cl]);
                        big.push(!cl);
                    }
                    self.inc_add_clause(big);
                    x
                }
                FNode::Or(cs) => {
                    let x = Lit::positive(self.aux_var());
                    let mut big = vec![!x];
                    for c in cs.iter() {
                        let cl = self.inc.lit_of[c];
                        self.inc_add_clause([x, !cl]);
                        big.push(cl);
                    }
                    self.inc_add_clause(big);
                    x
                }
                FNode::Ite(c, t, e) => {
                    let x = Lit::positive(self.aux_var());
                    let (lc, lt, le) = (
                        self.inc.lit_of[&c],
                        self.inc.lit_of[&t],
                        self.inc.lit_of[&e],
                    );
                    self.inc_add_clause([!x, !lc, lt]);
                    self.inc_add_clause([!x, lc, le]);
                    self.inc_add_clause([x, !lc, !lt]);
                    self.inc_add_clause([x, lc, !le]);
                    x
                }
                FNode::Iff(a, b) => {
                    let x = Lit::positive(self.aux_var());
                    let (la, lb) = (self.inc.lit_of[&a], self.inc.lit_of[&b]);
                    self.inc_add_clause([!x, !la, lb]);
                    self.inc_add_clause([!x, la, !lb]);
                    self.inc_add_clause([x, la, lb]);
                    self.inc_add_clause([x, !la, !lb]);
                    x
                }
            };
            self.inc.stats.grounded_nodes += 1;
            self.inc.lit_of.insert(f, lit);
        }
        self.inc.lit_of[&root]
    }

    /// Permanently asserts every side constraint not yet grounded (fresh
    /// finite-domain one-hot constraints and [`Ctx::assert_background`]
    /// assertions accumulated since the last query).
    fn ground_side_constraints(&mut self) {
        while self.inc.grounded_side < self.side_constraints.len() {
            let f = self.side_constraints[self.inc.grounded_side];
            self.inc.grounded_side += 1;
            if self.is_true(f) {
                continue;
            }
            if self.is_false(f) {
                self.inc.unsat = true;
                continue;
            }
            let l = self.ground(f);
            self.inc_add_clause([l]);
        }
    }

    /// Decides satisfiability of `root` (under the side constraints) on
    /// the *persistent* solver: formula nodes are grounded to CNF exactly
    /// once across the context's lifetime, the root is activated via an
    /// assumption literal, and everything the solver learns is retained
    /// for subsequent queries. This is the incremental counterpart of
    /// [`Ctx::solve_with_budget`]; both paths decide the same theory, so
    /// their SAT/UNSAT verdicts always agree.
    ///
    /// # Errors
    ///
    /// Returns [`SolveTimeout`] when the deadline passes or the interrupt
    /// flag is raised mid-search.
    pub fn solve_assuming(
        &mut self,
        root: Formula,
        deadline: Option<std::time::Instant>,
        interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    ) -> Result<Option<ModelView>, SolveTimeout> {
        let _span = rehearsal_trace::span_cat("solve", "solver");
        rehearsal_trace::counter_add("sat.queries_incremental", 1);
        self.ground_side_constraints();
        if self.is_false(root) || self.inc.unsat {
            return Ok(None);
        }
        let lit = self.ground(root);
        if self.inc.unsat {
            return Ok(None);
        }
        self.inc.solver.set_deadline(deadline);
        self.inc.solver.set_interrupt(interrupt);
        let result = self.inc.solver.solve_with_assumptions(&[lit]);
        // Don't let this query's budget poison later ones.
        self.inc.solver.set_deadline(None);
        self.inc.solver.set_interrupt(None);
        match result {
            SatResult::Sat(m) => Ok(Some(ModelView { model: m })),
            SatResult::Unsat => Ok(None),
            SatResult::Unknown => Err(SolveTimeout),
        }
    }

    /// The current boolean-variable watermark: the number of boolean
    /// variables allocated so far. Two contexts that executed the same
    /// deterministic sequence of allocations (e.g. parallel explorer
    /// workers encoding the same domain) agree on every `BVar` below
    /// their common watermark, which is what makes learnt-clause sharing
    /// ([`Ctx::export_learnt_clauses`]/[`Ctx::import_clauses`]) sound.
    pub fn watermark(&self) -> u32 {
        self.n_bool_vars
    }

    /// Short learnt clauses of the persistent solver mentioning only
    /// variables below `var_bound` (see [`Solver::export_learnts`]).
    pub fn export_learnt_clauses(&self, max_len: usize, var_bound: u32) -> Vec<Vec<Lit>> {
        self.inc.solver.export_learnts(max_len, var_bound as usize)
    }

    /// Adds clauses proved by a sibling context over the shared variable
    /// prefix to the persistent solver; returns how many were accepted.
    ///
    /// Safety gates: the side constraints are grounded first (so every
    /// imported variable's one-hot constraints are already asserted
    /// here), and clauses mentioning any variable at or above `var_bound`
    /// — or above this context's own watermark — are rejected. Callers
    /// must only share clauses between contexts whose allocation history
    /// below `var_bound` is identical.
    pub fn import_clauses(&mut self, clauses: &[Vec<Lit>], var_bound: u32) -> usize {
        let bound = var_bound.min(self.n_bool_vars) as usize;
        self.ground_side_constraints();
        self.inc.solver.reserve_vars(self.n_bool_vars as usize);
        let mut accepted = 0;
        for c in clauses {
            if c.is_empty() || c.iter().any(|l| l.var().index() >= bound) {
                continue;
            }
            accepted += 1;
            if !self.inc.solver.add_clause(c.iter().copied()) {
                self.inc.unsat = true;
            }
        }
        accepted
    }

    /// A 128-bit structural digest of a formula, stable across contexts
    /// that allocated their *variables* in the same order: it hashes node
    /// tags, boolean-variable indices, and child digests — never this
    /// context's interning order. Commutative connectives (`and`, `or`,
    /// `iff`) canonicalize children by node id, so their child digests
    /// are hashed in sorted order to erase that history dependence.
    /// Memoized per node, so digesting shared subtrees is O(1) after the
    /// first visit.
    pub fn formula_digest(&mut self, root: Formula) -> u128 {
        if let Some(&d) = self.fdigest_memo.get(&root) {
            return d;
        }
        let mut stack: Vec<(Formula, bool)> = vec![(root, false)];
        while let Some((f, expanded)) = stack.pop() {
            if self.fdigest_memo.contains_key(&f) {
                continue;
            }
            let node = self.fnodes[f.0 as usize].clone();
            if !expanded {
                stack.push((f, true));
                match &node {
                    FNode::True | FNode::False | FNode::Var(_) => {}
                    FNode::Not(a) => stack.push((*a, false)),
                    FNode::And(cs) | FNode::Or(cs) => {
                        for &c in cs.iter() {
                            stack.push((c, false));
                        }
                    }
                    FNode::Ite(c, t, e) => {
                        stack.push((*c, false));
                        stack.push((*t, false));
                        stack.push((*e, false));
                    }
                    FNode::Iff(a, b) => {
                        stack.push((*a, false));
                        stack.push((*b, false));
                    }
                }
                continue;
            }
            let child = |memo: &HashMap<Formula, u128>, f: &Formula| memo[f];
            let d = match &node {
                FNode::False => digest_mix(DIGEST_SEED, 0x01),
                FNode::True => digest_mix(DIGEST_SEED, 0x02),
                FNode::Var(b) => digest_mix(digest_mix(DIGEST_SEED, 0x03), u128::from(b.0)),
                FNode::Not(a) => {
                    digest_mix(digest_mix(DIGEST_SEED, 0x04), child(&self.fdigest_memo, a))
                }
                FNode::And(cs) | FNode::Or(cs) => {
                    let tag = if matches!(node, FNode::And(_)) {
                        0x05
                    } else {
                        0x06
                    };
                    // `and`/`or` canonicalize children by sorting on node
                    // *id*, which is interning-order dependent; sorting
                    // the child *digests* instead makes the hash agree
                    // between contexts that built the same conjunction
                    // through different histories.
                    let mut kids: Vec<u128> =
                        cs.iter().map(|c| child(&self.fdigest_memo, c)).collect();
                    kids.sort_unstable();
                    let mut d = digest_mix(digest_mix(DIGEST_SEED, tag), cs.len() as u128);
                    for k in kids {
                        d = digest_mix(d, k);
                    }
                    d
                }
                FNode::Ite(c, t, e) => {
                    let mut d = digest_mix(DIGEST_SEED, 0x07);
                    for x in [c, t, e] {
                        d = digest_mix(d, child(&self.fdigest_memo, x));
                    }
                    d
                }
                FNode::Iff(a, b) => {
                    // `iff` orders its operands by node id too — hash the
                    // operand digests in sorted order for the same reason
                    // as `and`/`or` above.
                    let (da, db) = (child(&self.fdigest_memo, a), child(&self.fdigest_memo, b));
                    let (lo, hi) = if da <= db { (da, db) } else { (db, da) };
                    digest_mix(digest_mix(digest_mix(DIGEST_SEED, 0x08), lo), hi)
                }
            };
            self.fdigest_memo.insert(f, d);
        }
        self.fdigest_memo[&root]
    }

    /// A 128-bit structural digest of a finite-domain term (see
    /// [`Ctx::formula_digest`]). Finite-domain variables hash as their
    /// allocation index, which deterministic encoders reproduce.
    pub fn term_digest(&mut self, root: Term) -> u128 {
        if let Some(&d) = self.tdigest_memo.get(&root) {
            return d;
        }
        let mut stack: Vec<(Term, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if self.tdigest_memo.contains_key(&t) {
                continue;
            }
            let node = self.tnodes[t.0 as usize].clone();
            if !expanded {
                stack.push((t, true));
                if let TNode::Ite(_, a, b) = &node {
                    stack.push((*a, false));
                    stack.push((*b, false));
                }
                continue;
            }
            let d = match node {
                TNode::Val(v) => digest_mix(digest_mix(DIGEST_SEED, 0x11), u128::from(v)),
                TNode::Var(idx) => digest_mix(digest_mix(DIGEST_SEED, 0x12), u128::from(idx)),
                TNode::Ite(c, a, b) => {
                    let dc = self.formula_digest(c);
                    let (da, db) = (self.tdigest_memo[&a], self.tdigest_memo[&b]);
                    digest_mix(
                        digest_mix(digest_mix(digest_mix(DIGEST_SEED, 0x13), dc), da),
                        db,
                    )
                }
            };
            self.tdigest_memo.insert(t, d);
        }
        self.tdigest_memo[&root]
    }

    /// Cumulative statistics of the persistent solver (conflicts,
    /// decisions, propagations across every [`Ctx::solve_assuming`]).
    pub fn solver_stats(&self) -> SolverStats {
        self.inc.solver.stats()
    }

    /// Grounding-reuse statistics for the incremental path.
    pub fn grounding_stats(&self) -> GroundingStats {
        self.inc.stats
    }

    /// Publishes the context's size, sharing, and search counters into the
    /// current trace session's registry (no-op when tracing is inactive).
    /// Called at phase boundaries — solving hot loops never touch the
    /// registry directly.
    pub fn publish_trace_metrics(&self) {
        if !rehearsal_trace::is_active() {
            return;
        }
        let s = self.stats();
        rehearsal_trace::gauge_max("ctx.formula_nodes", s.formula_nodes as i64);
        rehearsal_trace::gauge_max("ctx.term_nodes", s.term_nodes as i64);
        rehearsal_trace::gauge_max(
            "ctx.dedup_hits",
            (s.formula_dedup_hits + s.term_dedup_hits) as i64,
        );
        let solver = self.solver_stats();
        rehearsal_trace::counter_add("sat.conflicts", solver.conflicts);
        rehearsal_trace::counter_add("sat.decisions", solver.decisions);
        rehearsal_trace::counter_add("sat.propagations", solver.propagations);
        let g = self.grounding_stats();
        rehearsal_trace::counter_add("sat.grounded_nodes", g.grounded_nodes);
        rehearsal_trace::counter_add("sat.grounded_clauses", g.grounded_clauses);
        rehearsal_trace::counter_add("sat.grounding_reused", g.reused_nodes);
    }

    /// Evaluates a formula under a boolean assignment function (testing aid).
    pub fn eval_formula(&self, f: Formula, assign: &dyn Fn(u32) -> bool) -> bool {
        let mut memo: HashMap<Formula, bool> = HashMap::new();
        self.eval_rec(f, assign, &mut memo)
    }

    fn eval_rec(
        &self,
        f: Formula,
        assign: &dyn Fn(u32) -> bool,
        memo: &mut HashMap<Formula, bool>,
    ) -> bool {
        if let Some(&b) = memo.get(&f) {
            return b;
        }
        let v = match &self.fnodes[f.0 as usize] {
            FNode::True => true,
            FNode::False => false,
            FNode::Var(b) => assign(b.0),
            FNode::Not(a) => !self.eval_rec(*a, assign, memo),
            FNode::And(cs) => cs.iter().all(|&c| self.eval_rec(c, assign, memo)),
            FNode::Or(cs) => cs.iter().any(|&c| self.eval_rec(c, assign, memo)),
            FNode::Ite(c, t, e) => {
                if self.eval_rec(*c, assign, memo) {
                    self.eval_rec(*t, assign, memo)
                } else {
                    self.eval_rec(*e, assign, memo)
                }
            }
            FNode::Iff(a, b) => self.eval_rec(*a, assign, memo) == self.eval_rec(*b, assign, memo),
        };
        memo.insert(f, v);
        v
    }

    /// Evaluates a term to its value under a model.
    fn eval_term_in(&self, t: Term, model: &Model) -> u32 {
        match &self.tnodes[t.0 as usize] {
            TNode::Val(v) => *v,
            TNode::Var(i) => {
                let info = &self.fd_vars[*i as usize];
                for (pos, &b) in info.bits.iter().enumerate() {
                    if model.var_value(Var::from_index(b.0 as usize)) {
                        return info.values[pos];
                    }
                }
                // The exactly-one constraint guarantees a set bit in any
                // model that constrains this variable; default to the first
                // value for variables the query never mentioned.
                info.values[0]
            }
            TNode::Ite(c, a, b) => {
                if self.eval_formula_in(*c, model) {
                    self.eval_term_in(*a, model)
                } else {
                    self.eval_term_in(*b, model)
                }
            }
        }
    }

    fn eval_formula_in(&self, f: Formula, model: &Model) -> bool {
        self.eval_formula(f, &|bv| model.var_value(Var::from_index(bv as usize)))
    }
}

impl fmt::Display for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Ctx({} formulas, {} terms, {} bool vars, {} fd vars)",
            s.formula_nodes, s.term_nodes, s.bool_vars, s.fd_vars
        )
    }
}

/// The solver exceeded its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveTimeout;

impl fmt::Display for SolveTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAT solving exceeded its deadline")
    }
}

impl std::error::Error for SolveTimeout {}

/// A model of a satisfiable query, for decoding counterexamples.
#[derive(Debug, Clone)]
pub struct ModelView {
    model: Model,
}

impl ModelView {
    /// The value of a finite-domain term in this model.
    pub fn term_value_in(&self, ctx: &Ctx, t: Term) -> u32 {
        ctx.eval_term_in(t, &self.model)
    }

    /// The truth value of a formula in this model.
    pub fn formula_value_in(&self, ctx: &Ctx, f: Formula) -> bool {
        ctx.eval_formula_in(f, &self.model)
    }
}

/// Convenience wrapper so `model.term_value(t)` works when a context is
/// globally threaded; most call sites use the `_in` variants.
impl ModelView {
    /// The raw SAT model.
    pub fn sat_model(&self) -> &Model {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_on_empty_stats() {
        // Both ratio helpers must survive all-zero denominators (a Ctx
        // that never interned or grounded anything).
        assert_eq!(CtxStats::default().dedup_ratio(), 0.0);
        assert_eq!(GroundingStats::default().reuse_ratio(), 0.0);

        let half = CtxStats {
            formula_nodes: 3,
            term_nodes: 1,
            formula_dedup_hits: 2,
            term_dedup_hits: 2,
            ..CtxStats::default()
        };
        assert!((half.dedup_ratio() - 0.5).abs() < 1e-9);
        let reuse = GroundingStats {
            grounded_nodes: 1,
            reused_nodes: 3,
            grounded_clauses: 0,
        };
        assert!((reuse.reuse_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn constants() {
        let mut ctx = Ctx::new();
        let t = ctx.tt();
        let f = ctx.ff();
        assert_ne!(t, f);
        assert_eq!(ctx.not(t), f);
        assert_eq!(ctx.and2(t, f), f);
        assert_eq!(ctx.or2(t, f), t);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let f1 = ctx.and2(a, b);
        let f2 = ctx.and2(b, a);
        assert_eq!(f1, f2, "and is canonicalized by sorting");
        let n1 = ctx.not(a);
        let n2 = ctx.not(a);
        assert_eq!(n1, n2);
        assert_eq!(ctx.not(n1), a, "double negation cancels");
    }

    #[test]
    fn complement_simplification() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let na = ctx.not(a);
        assert_eq!(ctx.and2(a, na), ctx.ff());
        assert_eq!(ctx.or2(a, na), ctx.tt());
    }

    #[test]
    fn ite_simplifications() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let t = ctx.tt();
        let f = ctx.ff();
        assert_eq!(ctx.ite(t, a, b), a);
        assert_eq!(ctx.ite(f, a, b), b);
        assert_eq!(ctx.ite(a, b, b), b);
        assert_eq!(ctx.ite(a, t, f), a);
        let expected_not = ctx.not(a);
        assert_eq!(ctx.ite(a, f, t), expected_not);
    }

    #[test]
    fn solve_simple_sat() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let nb = ctx.not(b);
        let f = ctx.and2(a, nb);
        let m = ctx.solve(f).expect("sat");
        assert!(m.formula_value_in(&ctx, a));
        assert!(!m.formula_value_in(&ctx, b));
    }

    #[test]
    fn solve_with_raised_interrupt_reports_timeout() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let f = ctx.and2(a, b);
        let flag = Arc::new(AtomicBool::new(true));
        assert!(
            matches!(
                ctx.solve_with_budget(f, None, Some(flag)),
                Err(SolveTimeout)
            ),
            "a raised interrupt flag aborts the solve"
        );
        assert!(ctx.solve(f).is_some(), "without the flag it solves fine");
    }

    #[test]
    fn solve_simple_unsat() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let na = ctx.not(a);
        let f = ctx.and2(a, na);
        assert!(ctx.solve(f).is_none());
    }

    #[test]
    fn fd_var_takes_exactly_one_value() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2, 3]);
        let t = ctx.tt();
        let m = ctx.solve(t).expect("sat");
        let v = m.term_value_in(&ctx, x);
        assert!([1, 2, 3].contains(&v));
    }

    #[test]
    fn fd_constraints_narrow_value() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[5, 6, 7]);
        let b5 = ctx.bit(x, 5);
        let b7 = ctx.bit(x, 7);
        let n5 = ctx.not(b5);
        let n7 = ctx.not(b7);
        let f = ctx.and2(n5, n7);
        let m = ctx.solve(f).expect("sat");
        assert_eq!(m.term_value_in(&ctx, x), 6);
    }

    #[test]
    fn bit_of_impossible_value_is_false() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2]);
        assert_eq!(ctx.bit(x, 99), ctx.ff());
    }

    #[test]
    fn eq_terms_on_disjoint_domains_is_false() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2]);
        let y = ctx.fd_var(&[3, 4]);
        assert_eq!(ctx.eq_terms(x, y), ctx.ff());
    }

    #[test]
    fn eq_terms_forces_agreement() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2, 3]);
        let y = ctx.fd_var(&[2, 3, 4]);
        let eq = ctx.eq_terms(x, y);
        let b3x = ctx.bit(x, 3);
        let n3x = ctx.not(b3x);
        let f = ctx.and2(eq, n3x);
        let m = ctx.solve(f).expect("sat");
        assert_eq!(m.term_value_in(&ctx, x), 2);
        assert_eq!(m.term_value_in(&ctx, y), 2);
    }

    #[test]
    fn tite_threads_conditions() {
        let mut ctx = Ctx::new();
        let c = ctx.fresh_bool();
        let one = ctx.val(1);
        let two = ctx.val(2);
        let t = ctx.tite(c, one, two);
        // t == 1 forces c.
        let b1 = ctx.bit(t, 1);
        let m = ctx.solve(b1).expect("sat");
        assert!(m.formula_value_in(&ctx, c));
        assert_eq!(m.term_value_in(&ctx, t), 1);
    }

    #[test]
    fn possible_values_of_ite() {
        let mut ctx = Ctx::new();
        let c = ctx.fresh_bool();
        let x = ctx.fd_var(&[1, 2]);
        let y = ctx.val(7);
        let t = ctx.tite(c, x, y);
        let vs = ctx.possible_values(t);
        assert_eq!(&*vs, &vec![1, 2, 7]);
    }

    #[test]
    fn iff_encoding() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let iff = ctx.iff(a, b);
        let f = ctx.and2(iff, a);
        let m = ctx.solve(f).expect("sat");
        assert!(m.formula_value_in(&ctx, b));
        // a ↔ b with a and ¬b: unsat
        let nb = ctx.not(b);
        let f2 = ctx.and([iff, a, nb]);
        assert!(ctx.solve(f2).is_none());
    }

    #[test]
    fn deep_formula_solves() {
        // Chain of equivalences a0 ↔ a1 ↔ ... ↔ an with a0 true forces all.
        let mut ctx = Ctx::new();
        let vars: Vec<Formula> = (0..200).map(|_| ctx.fresh_bool()).collect();
        let mut conj = vec![vars[0]];
        for i in 0..vars.len() - 1 {
            let e = ctx.iff(vars[i], vars[i + 1]);
            conj.push(e);
        }
        let f = ctx.and(conj);
        let m = ctx.solve(f).expect("sat");
        for &v in &vars {
            assert!(m.formula_value_in(&ctx, v));
        }
    }

    #[test]
    fn to_cnf_of_constant_true() {
        let mut ctx = Ctx::new();
        let t = ctx.tt();
        assert!(ctx.solve(t).is_some());
    }

    #[test]
    fn to_cnf_of_constant_false() {
        let mut ctx = Ctx::new();
        let f = ctx.ff();
        assert!(ctx.solve(f).is_none());
    }

    #[test]
    fn incremental_agrees_with_oneshot() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2, 3]);
        let y = ctx.fd_var(&[2, 3, 4]);
        let eq = ctx.eq_terms(x, y);
        let b1 = ctx.bit(x, 1);
        let queries = {
            let both = ctx.and2(eq, b1);
            let neq = ctx.not(eq);
            vec![eq, both, neq, ctx.tt(), ctx.ff()]
        };
        for q in queries {
            let oneshot = ctx.solve(q).is_some();
            let incremental = ctx.solve_assuming(q, None, None).unwrap().is_some();
            assert_eq!(oneshot, incremental, "paths disagree on query {q:?}");
        }
    }

    #[test]
    fn incremental_grounds_shared_nodes_once() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2, 3]);
        let y = ctx.fd_var(&[1, 2, 3]);
        let eq = ctx.eq_terms(x, y);
        assert!(ctx.solve_assuming(eq, None, None).unwrap().is_some());
        let after_first = ctx.grounding_stats();
        assert!(after_first.grounded_nodes > 0);
        // A second query over the same subformula reuses its grounding.
        let b1 = ctx.bit(x, 1);
        let q2 = ctx.and2(eq, b1);
        assert!(ctx.solve_assuming(q2, None, None).unwrap().is_some());
        let after_second = ctx.grounding_stats();
        assert!(
            after_second.reused_nodes > after_first.reused_nodes,
            "eq was already grounded"
        );
        assert!(after_second.reuse_ratio() > 0.0);
    }

    #[test]
    fn incremental_models_decode_terms() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[5, 6, 7]);
        let b5 = ctx.bit(x, 5);
        let b7 = ctx.bit(x, 7);
        let n5 = ctx.not(b5);
        let n7 = ctx.not(b7);
        let f = ctx.and2(n5, n7);
        let m = ctx.solve_assuming(f, None, None).unwrap().expect("sat");
        assert_eq!(m.term_value_in(&ctx, x), 6);
        // Auxiliary Tseitin variables must not disturb decoding of
        // booleans allocated after a grounded query.
        let fresh = ctx.fresh_bool();
        let q = ctx.and2(f, fresh);
        let m = ctx.solve_assuming(q, None, None).unwrap().expect("sat");
        assert_eq!(m.term_value_in(&ctx, x), 6);
        assert!(m.formula_value_in(&ctx, fresh));
    }

    #[test]
    fn incremental_unsat_then_sat_queries() {
        let mut ctx = Ctx::new();
        let x = ctx.fd_var(&[1, 2]);
        let b1 = ctx.bit(x, 1);
        let b2 = ctx.bit(x, 2);
        let both = ctx.and2(b1, b2);
        assert!(
            ctx.solve_assuming(both, None, None).unwrap().is_none(),
            "one-hot forbids two values"
        );
        // The UNSAT query must not poison the solver for later queries.
        assert!(ctx.solve_assuming(b1, None, None).unwrap().is_some());
        assert!(ctx.solve_assuming(b2, None, None).unwrap().is_some());
        let stats = ctx.solver_stats();
        assert!(stats.propagations > 0);
    }

    #[test]
    fn incremental_respects_raised_interrupt() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let f = ctx.and2(a, b);
        let flag = Arc::new(AtomicBool::new(true));
        assert!(matches!(
            ctx.solve_assuming(f, None, Some(flag)),
            Err(SolveTimeout)
        ));
        // The budget does not stick to the persistent solver.
        assert!(ctx.solve_assuming(f, None, None).unwrap().is_some());
    }

    #[test]
    fn incremental_sees_late_background_assertions() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let t = ctx.tt();
        assert!(ctx.solve_assuming(t, None, None).unwrap().is_some());
        let na = ctx.not(a);
        ctx.assert_background(na);
        let m = ctx.solve_assuming(t, None, None).unwrap().expect("sat");
        assert!(!m.formula_value_in(&ctx, a), "late assertion is enforced");
        assert!(ctx.solve_assuming(a, None, None).unwrap().is_none());
    }

    #[test]
    fn eval_formula_matches_solver() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let c = ctx.fresh_bool();
        let ab = ctx.and2(a, b);
        let f = ctx.ite(c, ab, a);
        let nf = ctx.not(f);
        // Enumerate all assignments; formula evaluation must agree with a
        // truth-table of the intended function.
        for bits in 0..8u32 {
            let assign = move |v: u32| bits >> v & 1 == 1;
            let (va, vb, vc) = (assign(0), assign(1), assign(2));
            let expected = if vc { va && vb } else { va };
            assert_eq!(ctx.eval_formula(f, &assign), expected);
            assert_eq!(ctx.eval_formula(nf, &assign), !expected);
        }
    }

    /// Builds the same formula in a fresh context, returning the root.
    /// Mirrors how parallel explorer workers each encode the same domain.
    fn build_sample(ctx: &mut Ctx) -> Formula {
        let x = ctx.fd_var(&[0, 1, 2]);
        let y = ctx.fd_var(&[1, 2, 3]);
        let eq = ctx.eq_terms(x, y);
        let b = ctx.fresh_bool();
        let nb = ctx.not(b);
        let disj = ctx.or2(eq, nb);
        ctx.and2(disj, b)
    }

    #[test]
    fn digests_agree_across_contexts_with_same_history() {
        let mut c1 = Ctx::new();
        let mut c2 = Ctx::new();
        let f1 = build_sample(&mut c1);
        let f2 = build_sample(&mut c2);
        assert_eq!(c1.formula_digest(f1), c2.formula_digest(f2));
        let t1 = c1.fd_var(&[4, 5]);
        let t2 = c2.fd_var(&[4, 5]);
        assert_eq!(c1.term_digest(t1), c2.term_digest(t2));
        // Memoization returns the same digest on a second call.
        assert_eq!(c1.formula_digest(f1), c2.formula_digest(f2));
    }

    #[test]
    fn digests_distinguish_structure() {
        let mut ctx = Ctx::new();
        let a = ctx.fresh_bool();
        let b = ctx.fresh_bool();
        let and = ctx.and2(a, b);
        let or = ctx.or2(a, b);
        let not_a = ctx.not(a);
        let tt = ctx.tt();
        let ff = ctx.ff();
        let mut seen = std::collections::HashSet::new();
        for f in [a, b, and, or, not_a, tt, ff] {
            assert!(seen.insert(ctx.formula_digest(f)), "digest collision");
        }
        let v = ctx.fd_var(&[0, 1]);
        let w = ctx.fd_var(&[0, 1]);
        assert_ne!(
            ctx.term_digest(v),
            ctx.term_digest(w),
            "distinct fd vars digest distinctly even with equal domains"
        );
    }

    #[test]
    fn learnt_clause_export_respects_bounds() {
        let mut ctx = Ctx::new();
        let root = build_sample(&mut ctx);
        let wm = ctx.watermark();
        assert!(ctx.solve_assuming(root, None, None).unwrap().is_some());
        for c in ctx.export_learnt_clauses(2, wm) {
            assert!(!c.is_empty() && c.len() <= 2);
            assert!(c.iter().all(|l| (l.var().index() as u32) < wm));
        }
    }

    #[test]
    fn import_clauses_preserves_verdicts() {
        // Worker A proves clauses over the shared prefix; worker B imports
        // them. Both must still agree with a fresh context on every query.
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        let ra = build_sample(&mut a);
        let rb = build_sample(&mut b);
        let wm = a.watermark();
        assert_eq!(wm, b.watermark());
        assert!(a.solve_assuming(ra, None, None).unwrap().is_some());
        let exported = a.export_learnt_clauses(8, wm);
        let accepted = b.import_clauses(&exported, wm);
        assert_eq!(accepted, exported.len());
        // SAT query still SAT after the import.
        assert!(b.solve_assuming(rb, None, None).unwrap().is_some());
        // An UNSAT query stays UNSAT: assume the negation of a background
        // truth.
        let nrb = b.not(rb);
        let and_rb = b.and2(rb, nrb);
        assert!(b.solve_assuming(and_rb, None, None).unwrap().is_none());
        // Clauses over unknown variables are rejected, not asserted.
        let bogus = vec![vec![Lit::positive(Var::from_index(10_000))]];
        assert_eq!(b.import_clauses(&bogus, wm), 0);
    }
}
