//! A standalone DIMACS SAT solver front-end for `rehearsal-solver`,
//! following the conventional competition output format (`s SATISFIABLE` /
//! `s UNSATISFIABLE` plus a `v` model line).
//!
//! ```text
//! rehearsal_sat problem.cnf
//! cat problem.cnf | rehearsal_sat
//! ```

use rehearsal_solver::{Cnf, SatResult, Solver};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first().map(String::as_str) {
        None | Some("-") => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("c error: cannot read stdin");
                return ExitCode::from(2);
            }
            buf
        }
        Some("--help") | Some("-h") => {
            println!("usage: rehearsal_sat [FILE.cnf]   (stdin when no file)");
            return ExitCode::SUCCESS;
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("c error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let cnf = match Cnf::from_dimacs(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("c error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut solver = Solver::new();
    solver.reserve_vars(cnf.num_vars());
    let mut trivially_unsat = false;
    for clause in cnf.clauses() {
        if !solver.add_clause(clause.iter().copied()) {
            trivially_unsat = true;
            break;
        }
    }
    let result = if trivially_unsat {
        SatResult::Unsat
    } else {
        solver.solve()
    };
    let stats = solver.stats();
    println!(
        "c conflicts={} decisions={} propagations={} restarts={}",
        stats.conflicts, stats.decisions, stats.propagations, stats.restarts
    );
    match result {
        SatResult::Sat(model) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars() {
                let lit = rehearsal_solver::Lit::positive(rehearsal_solver::Var::from_index(i));
                let n = if model.value(lit) {
                    (i + 1) as i64
                } else {
                    -((i + 1) as i64)
                };
                line.push(' ');
                line.push_str(&n.to_string());
                if line.len() > 72 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            ExitCode::from(10)
        }
        SatResult::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        SatResult::Unknown => {
            println!("s UNKNOWN");
            ExitCode::SUCCESS
        }
    }
}
