# Ownership race on a home directory: `useradd -m` style home creation
# chowns /home/deploy to the user, while a hardening file resource locks
# the same directory down to root. Both orders converge on "the directory
# exists" — invisible without the metadata model — but the final owner
# depends on which resource ran last.
file { '/home': ensure => directory }

user { 'deploy':
  ensure     => present,
  managehome => true,
}

file { '/home/deploy':
  ensure  => directory,
  owner   => 'root',
  mode    => '0700',
  require => File['/home'],
}
