# The fixed twin of home-owner-nondet: the hardening resource runs after
# the user is created, so the home always ends root-owned at mode 0700.
file { '/home': ensure => directory }

user { 'deploy':
  ensure     => present,
  managehome => true,
  require    => File['/home'],
}

file { '/home/deploy':
  ensure  => directory,
  owner   => 'root',
  mode    => '0700',
  require => [File['/home'], User['deploy']],
}
