# The fixed twin of webroot-perms-nondet: the deployment class's mode is
# declared to win by ordering it after the webserver's file resource, so
# every run ends with /var/www/index.html at mode 0755.
class webserver {
  file { '/var/www': ensure => directory }
  file { 'webroot-index':
    path    => '/var/www/index.html',
    content => 'hello world',
    mode    => '0644',
    require => File['/var/www'],
  }
}

class deployment {
  file { 'deploy-index':
    path    => '/var/www/index.html',
    content => 'hello world',
    mode    => '0755',
    require => File['/var/www'],
  }
}

include webserver
include deployment

File['webroot-index'] -> File['deploy-index']
