# The fixed twin of logdir-group-nondet: hardening is declared to win.
file { '/var/log': ensure => directory }
file { '/var/log/app':
  ensure  => directory,
  require => File['/var/log'],
}

file { 'app-config':
  path    => '/var/log/app/app.conf',
  content => 'rotate 7',
  group   => 'adm',
  require => File['/var/log/app'],
}

file { 'hardening-config':
  path    => '/var/log/app/app.conf',
  content => 'rotate 7',
  group   => 'root',
  mode    => '0640',
  require => File['/var/log/app'],
}

File['app-config'] -> File['hardening-config']
