# Permission race on a web root: the webserver module ships the document
# root world-readable, while an independent deployment class re-manages the
# same file as executable. The contents agree, so the metadata-free model
# sees two identical definitive writes that commute — only the
# metadata-aware model (--model-metadata) exposes the last-chmod-wins race.
class webserver {
  file { '/var/www': ensure => directory }
  file { 'webroot-index':
    path    => '/var/www/index.html',
    content => 'hello world',
    mode    => '0644',
    require => File['/var/www'],
  }
}

class deployment {
  file { 'deploy-index':
    path    => '/var/www/index.html',
    content => 'hello world',
    mode    => '0755',
    require => File['/var/www'],
  }
}

include webserver
include deployment
