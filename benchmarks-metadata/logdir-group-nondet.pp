# Group-ownership race on a log configuration: the application module
# hands its config to the 'adm' group while a hardening class re-manages
# the same file as root-owned group with a tighter mode. Identical
# contents make the metadata-free model call the pair commuting.
file { '/var/log': ensure => directory }
file { '/var/log/app':
  ensure  => directory,
  require => File['/var/log'],
}

file { 'app-config':
  path    => '/var/log/app/app.conf',
  content => 'rotate 7',
  group   => 'adm',
  require => File['/var/log/app'],
}

file { 'hardening-config':
  path    => '/var/log/app/app.conf',
  content => 'rotate 7',
  group   => 'root',
  mode    => '0640',
  require => File['/var/log/app'],
}
