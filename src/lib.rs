//! **Rehearsal** — a configuration verification tool for Puppet.
//!
//! A from-scratch Rust implementation of *Rehearsal: A Configuration
//! Verification Tool for Puppet* (Shambaugh, Weiss, Guha — PLDI 2016).
//! Rehearsal proves that a Puppet manifest is **deterministic** (every
//! resource order produces the same machine state on every input) and
//! **idempotent** (applying it twice equals applying it once), or produces
//! a concrete, replayed counterexample.
//!
//! This crate is the user-facing facade: it re-exports the pipeline from
//! the workspace crates and ships the reconstructed benchmark suite used
//! by the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use rehearsal::{Platform, Rehearsal};
//!
//! let tool = Rehearsal::new(Platform::Ubuntu);
//! let report = tool.verify(r#"
//!     package { 'vim': ensure => present }
//!     file { '/home/carol/.vimrc': content => 'syntax on' }
//!     user { 'carol': ensure => present, managehome => true }
//!     User['carol'] -> File['/home/carol/.vimrc']
//! "#)?;
//! assert!(report.is_correct());
//! # Ok::<(), rehearsal::RehearsalError>(())
//! ```
//!
//! # Architecture
//!
//! * [`puppet`] — lexer, parser, evaluator: manifests → resource graphs;
//! * [`resources`] — the compiler `C`: resources → FS programs;
//! * [`fs`] — the FS language and its concrete semantics;
//! * [`pkgdb`] — package listings (the `apt-file`/`repoquery` substitute);
//! * [`solver`] — CDCL SAT + finite-domain formulas (the Z3 substitute);
//! * [`core`] — the determinacy/idempotency analyses;
//! * [`lint`] — the solver-free static analyzer (`rehearsal lint`);
//! * [`trace`] — phase-scoped tracing, the metrics registry, and profile
//!   export (`--timings`, `--trace`, `--metrics`).

#![warn(missing_docs)]

pub use rehearsal_core::{
    check_determinism, check_expr_equivalence, check_expr_idempotence, check_idempotence,
    check_invariant, AnalysisAborted, AnalysisOptions, CancelToken, Counterexample,
    DeterminismReport, DeterminismStats, EquivalenceReport, FsGraph, IdempotenceReport, Invariant,
    InvariantReport, Rehearsal, RehearsalError, RehearsalErrorKind, SourceAnalysis,
    VerificationReport,
};
pub use rehearsal_core::{
    determinism_diagnostics, idempotence_diagnostics, race_diagnostic, render_counterexample,
    render_determinism, render_idempotence,
};
pub use rehearsal_core::{suggest_repair, RepairReport};
pub use rehearsal_diag::{
    codes, Diagnostic, FileId, Label, Pos, RenderOptions, Severity, SourceMap, Span,
};
pub use rehearsal_fleet::{
    github_annotations, FleetCounts, FleetEngine, FleetJob, FleetOptions, FleetReport, Verdict,
    VerdictCache,
};
pub use rehearsal_lint::{lint_source, LintLevel, LintOptions, LintReport, RuleInfo, RULES};
pub use rehearsal_pkgdb::Platform;
pub use rehearsal_puppet::Facts;

/// The analysis core (re-export of `rehearsal-core`).
pub mod core {
    pub use rehearsal_core::*;
}

/// The unified diagnostics surface (re-export of `rehearsal-diag`).
pub mod diag {
    pub use rehearsal_diag::*;
}

/// The batch-verification engine (re-export of `rehearsal-fleet`).
pub mod fleet {
    pub use rehearsal_fleet::*;
}

/// The FS language (re-export of `rehearsal-fs`).
pub mod fs {
    pub use rehearsal_fs::*;
}

/// The solver-free static analyzer (re-export of `rehearsal-lint`).
pub mod lint {
    pub use rehearsal_lint::*;
}

/// Package listings (re-export of `rehearsal-pkgdb`).
pub mod pkgdb {
    pub use rehearsal_pkgdb::*;
}

/// The Puppet frontend (re-export of `rehearsal-puppet`).
pub mod puppet {
    pub use rehearsal_puppet::*;
}

/// The resource compiler (re-export of `rehearsal-resources`).
pub mod resources {
    pub use rehearsal_resources::*;
}

/// The SAT/finite-domain solver (re-export of `rehearsal-solver`).
pub mod solver {
    pub use rehearsal_solver::*;
}

/// The warm-core verification daemon: HTTP endpoints, watch-mode drift
/// detection, hash-chained run history, and the coverage gate
/// (re-export of `rehearsal-serve`).
pub mod serve {
    pub use rehearsal_serve::*;
}

/// Phase tracing, the metrics registry, and profile export (re-export of
/// `rehearsal-trace`).
pub mod trace {
    pub use rehearsal_trace::*;
}

/// The reconstructed benchmark suite from the paper's evaluation (§6).
pub mod benchmarks {
    /// One benchmark manifest.
    #[derive(Debug, Clone, Copy)]
    pub struct Benchmark {
        /// The name used in the paper's figures.
        pub name: &'static str,
        /// Puppet source text.
        pub source: &'static str,
        /// Whether the paper (and our reconstruction) expects it to be
        /// deterministic.
        pub deterministic: bool,
    }

    /// The 13 third-party benchmarks of fig. 11 (six `-nondet`).
    pub const SUITE: &[Benchmark] = &[
        Benchmark {
            name: "amavis",
            source: include_str!("../benchmarks/amavis.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "bind",
            source: include_str!("../benchmarks/bind.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "clamav",
            source: include_str!("../benchmarks/clamav.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "dns-nondet",
            source: include_str!("../benchmarks/dns-nondet.pp"),
            deterministic: false,
        },
        Benchmark {
            name: "hosting",
            source: include_str!("../benchmarks/hosting.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "irc-nondet",
            source: include_str!("../benchmarks/irc-nondet.pp"),
            deterministic: false,
        },
        Benchmark {
            name: "jpa",
            source: include_str!("../benchmarks/jpa.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "logstash-nondet",
            source: include_str!("../benchmarks/logstash-nondet.pp"),
            deterministic: false,
        },
        Benchmark {
            name: "monit",
            source: include_str!("../benchmarks/monit.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "nginx",
            source: include_str!("../benchmarks/nginx.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "ntp-nondet",
            source: include_str!("../benchmarks/ntp-nondet.pp"),
            deterministic: false,
        },
        Benchmark {
            name: "rsyslog-nondet",
            source: include_str!("../benchmarks/rsyslog-nondet.pp"),
            deterministic: false,
        },
        Benchmark {
            name: "xinetd-nondet",
            source: include_str!("../benchmarks/xinetd-nondet.pp"),
            deterministic: false,
        },
    ];

    /// The fixed versions of the six non-deterministic benchmarks plus the
    /// seven already-correct ones — the 13 manifests of the idempotence
    /// study (fig. 12).
    pub const FIXED_SUITE: &[Benchmark] = &[
        Benchmark {
            name: "amavis",
            source: include_str!("../benchmarks/amavis.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "bind",
            source: include_str!("../benchmarks/bind.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "clamav",
            source: include_str!("../benchmarks/clamav.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "dns",
            source: include_str!("../benchmarks/dns.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "hosting",
            source: include_str!("../benchmarks/hosting.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "irc",
            source: include_str!("../benchmarks/irc.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "jpa",
            source: include_str!("../benchmarks/jpa.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "logstash",
            source: include_str!("../benchmarks/logstash.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "monit",
            source: include_str!("../benchmarks/monit.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "nginx",
            source: include_str!("../benchmarks/nginx.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "ntp",
            source: include_str!("../benchmarks/ntp.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "rsyslog",
            source: include_str!("../benchmarks/rsyslog.pp"),
            deterministic: true,
        },
        Benchmark {
            name: "xinetd",
            source: include_str!("../benchmarks/xinetd.pp"),
            deterministic: true,
        },
    ];

    /// Looks a benchmark up by name in either suite.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        SUITE
            .iter()
            .chain(FIXED_SUITE.iter())
            .find(|b| b.name == name)
            .copied()
    }

    /// One permission-race benchmark for the metadata-aware FS model.
    #[derive(Debug, Clone, Copy)]
    pub struct MetadataBenchmark {
        /// Benchmark name.
        pub name: &'static str,
        /// Puppet source text.
        pub source: &'static str,
        /// Expected determinism verdict *with the metadata model on*
        /// (`AnalysisOptions::model_metadata = true`). With the model off,
        /// every manifest in this suite is deterministic — the races are
        /// metadata-only by construction (identical contents).
        pub deterministic_with_metadata: bool,
    }

    /// The permission-race suite (`benchmarks-metadata/`): three
    /// metadata-only races plus their `->`-fixed twins. Verdicts are
    /// pinned by the integration tests and the CI bench gate.
    pub const METADATA_SUITE: &[MetadataBenchmark] = &[
        MetadataBenchmark {
            name: "webroot-perms-nondet",
            source: include_str!("../benchmarks-metadata/webroot-perms-nondet.pp"),
            deterministic_with_metadata: false,
        },
        MetadataBenchmark {
            name: "webroot-perms",
            source: include_str!("../benchmarks-metadata/webroot-perms.pp"),
            deterministic_with_metadata: true,
        },
        MetadataBenchmark {
            name: "home-owner-nondet",
            source: include_str!("../benchmarks-metadata/home-owner-nondet.pp"),
            deterministic_with_metadata: false,
        },
        MetadataBenchmark {
            name: "home-owner",
            source: include_str!("../benchmarks-metadata/home-owner.pp"),
            deterministic_with_metadata: true,
        },
        MetadataBenchmark {
            name: "logdir-group-nondet",
            source: include_str!("../benchmarks-metadata/logdir-group-nondet.pp"),
            deterministic_with_metadata: false,
        },
        MetadataBenchmark {
            name: "logdir-group",
            source: include_str!("../benchmarks-metadata/logdir-group.pp"),
            deterministic_with_metadata: true,
        },
    ];
}
