//! The `rehearsal` command-line tool.
//!
//! ```text
//! rehearsal check <manifest.pp> [--platform ubuntu|centos] [--json] [...]
//! rehearsal idempotence <manifest.pp> [...]
//! rehearsal graph <manifest.pp> [...]
//! rehearsal benchmarks [--json] [--timeout SECONDS]
//! rehearsal lint <DIR|FILE...> [--allow RULE] [--warn RULE] [--deny RULE|warnings] [...]
//! rehearsal fleet <DIR|FILE...> [--jobs N] [--threads N] [--json] [--cache FILE] [--baseline FILE] [...]
//! ```

use rehearsal::fleet::{
    check_document, diagnostic_json, discover_manifests, github_annotations, read_manifest_list,
    BaselineStore, FleetEngine, FleetOptions, Json, StateDir, VerdictCache,
};
use rehearsal::trace::Session;
use rehearsal::{
    AnalysisOptions, Diagnostic, LintLevel, LintOptions, Platform, Rehearsal, RenderOptions,
    Severity, SourceMap,
};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
rehearsal — a configuration verification tool for Puppet

USAGE:
    rehearsal <COMMAND> [OPTIONS]

COMMANDS:
    check <FILE>         verify determinism (and idempotence if deterministic)
    idempotence <FILE>   check idempotence only
    repair <FILE>        propose dependency edges that fix nondeterminism
    apply <FILE>         simulate applying the manifest to a machine state
    graph <FILE>         print the compiled resource graph
    benchmarks           run the paper's 13-benchmark suite
    lint <DIR|FILE...>   run the solver-free static analyzer (R2xxx rules)
    fleet <DIR|FILE...>  batch-verify every .pp manifest (the CI gate)
    serve                run the warm-core verification daemon (HTTP/JSON)
    coverage <DIR...>    gate on verdict drift / coverage vs a pinned baseline

OPTIONS:
    --platform <ubuntu|centos>   target platform        [default: ubuntu]
    --state <FILE>               initial machine state for `apply` (default: /)
    --timeout <SECONDS>          per-analysis time budget [default: 600]
    --json                       machine-readable output (check/benchmarks/fleet)
    --error-format <human|json>  how errors and findings are printed to
                                 stderr: rustc-style snippets with carets
                                 (NO_COLOR-aware), or one JSON diagnostic
                                 per line                [default: human]
    --model-metadata             honor owner/group/mode attributes (the
                                 metadata-aware FS model; permission races
                                 become checkable)
    --model-latest               model `ensure => latest` packages distinctly
                                 from `present` (version-bump re-overwrite)
    --no-commutativity           disable the commutativity check (fig. 11c)
    --no-pruning                 disable path pruning (fig. 11b)
    --no-elimination             disable resource elimination
    --threads <N>                explorer threads per analysis; 0 = auto
                                 (one per CPU), 1 = exact sequential
                                 traversal            [default: auto]

OBSERVABILITY:
    --timings                    print the per-phase timing tree to stderr
    --trace <FILE>               write a Chrome trace-event JSON profile
                                 (load in chrome://tracing or Perfetto)
    --metrics <FILE>             write the metrics registry in Prometheus
                                 textfile format

LINT OPTIONS:
    --allow <RULE>               drop a rule's findings (rule code like
                                 R2001 or kebab-case name like
                                 race-candidate; repeatable, last wins)
    --warn <RULE>                report a rule at warning severity
    --deny <RULE>                report a rule at error severity; the
                                 special value `warnings` promotes every
                                 surviving warning to an error

`rehearsal lint` exits non-zero iff any finding lands at error severity,
and tolerates directories containing no manifests. `rehearsal check`
prints the same findings to stderr as advisories. `rehearsal fleet
--lint` attaches them to report rows and `--annotations`.

FLEET OPTIONS:
    --jobs <N>                   manifest workers; cores left over become
                                 explorer threads       [default: auto]
                                 (with --threads, jobs × threads is capped
                                 at the core count; the report header
                                 echoes the resolved split)
    --cache <FILE>               JSONL verdict cache, reused across runs
    --baseline <FILE>            differential-verification baseline: persists
                                 graph digests, footprint summaries, and pair
                                 commutativity verdicts so a rerun after an
                                 edit re-analyzes only the dirty cone
    --list <FILE>                read manifest paths from FILE (one per line)
    --annotations                print GitHub Actions ::error/::warning
                                 annotations from the diagnostics stream
                                 (only when GITHUB_ACTIONS is set)
    --lint                       also run the lint pass per manifest and
                                 attach R2xxx findings to the report rows
                                 (advisory: never affects the gate verdict)

`rehearsal fleet` exits non-zero iff any manifest fails verification,
making it usable directly as a CI gate.

SERVE / COVERAGE OPTIONS:
    --addr <HOST:PORT>           serve: listen address [default: 127.0.0.1:7777]
                                 coverage: gate against a running daemon's
                                 /v1/coverage instead of verifying locally
    --watch <DIR>                serve: poll DIR for manifest changes and
                                 re-verify through the differential path
    --poll-ms <N>                watch poll interval   [default: 1000]
    --workers <N>                request worker threads; 0 = max(2, cores)
    --state-dir <DIR>            persistent daemon state: verdict cache,
                                 baseline, and the hash-chained history.jsonl
    --threshold <PCT>            coverage: minimum pinned coverage [default: 100]
    --pin                        coverage: record current verdicts as the new
                                 baseline and exit 0

`rehearsal serve` drains in-flight requests on SIGINT/SIGTERM, flushes
its caches, and appends a final history record. `rehearsal coverage`
exits 0 when clean, 1 on drift or below-threshold coverage, 2 on errors.
";

/// How errors and findings are encoded on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorFormat {
    /// Rustc-style snippets with carets (NO_COLOR-aware).
    Human,
    /// One JSON diagnostic object per line.
    Json,
}

struct Args {
    command: String,
    paths: Vec<String>,
    platform: Platform,
    options: AnalysisOptions,
    state: Option<String>,
    json: bool,
    jobs: usize,
    threads: usize,
    cache: Option<String>,
    baseline: Option<String>,
    list: Option<String>,
    error_format: ErrorFormat,
    annotations: bool,
    timings: bool,
    trace: Option<String>,
    metrics: Option<String>,
    lint: bool,
    lint_overrides: Vec<(String, LintLevel)>,
    lint_deny_warnings: bool,
    addr: Option<String>,
    watch: Option<String>,
    state_dir: Option<String>,
    poll_ms: u64,
    workers: usize,
    threshold: f64,
    pin: bool,
}

/// Validates a `--allow/--warn/--deny` operand: rule codes (`R2001`) and
/// kebab-case names (`race-candidate`) both work.
fn check_rule_key(flag: &str, key: &str) -> Result<(), String> {
    if rehearsal::lint::find_rule(key).is_some() {
        return Ok(());
    }
    Err(format!(
        "{flag} {key:?}: unknown lint rule (codes R2001..R2009 or names \
         like `race-candidate`; see the README rule table)"
    ))
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut paths = Vec::new();
    let mut platform = Platform::Ubuntu;
    let mut options = AnalysisOptions::default().with_timeout(Duration::from_secs(600));
    let mut state = None;
    let mut json = false;
    let mut jobs = 0;
    let mut threads = 0;
    let mut cache = None;
    let mut baseline = None;
    let mut list = None;
    let mut error_format = ErrorFormat::Human;
    let mut annotations = false;
    let mut timings = false;
    let mut trace = None;
    let mut metrics = None;
    let mut lint = false;
    let mut lint_overrides = Vec::new();
    let mut lint_deny_warnings = false;
    let mut addr = None;
    let mut watch = None;
    let mut state_dir = None;
    let mut poll_ms = 1000u64;
    let mut workers = 0usize;
    let mut threshold = 100.0f64;
    let mut pin = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--state" => {
                state = Some(argv.next().ok_or("--state needs a value")?);
            }
            "--platform" => {
                let v = argv.next().ok_or("--platform needs a value")?;
                platform = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--timeout" => {
                let v = argv.next().ok_or("--timeout needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "bad --timeout value")?;
                options.timeout = Some(Duration::from_secs(secs));
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad --jobs value")?;
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| "bad --threads value")?;
            }
            "--cache" => {
                cache = Some(argv.next().ok_or("--cache needs a value")?);
            }
            "--baseline" => {
                baseline = Some(argv.next().ok_or("--baseline needs a value")?);
            }
            "--list" => {
                list = Some(argv.next().ok_or("--list needs a value")?);
            }
            "--json" => json = true,
            "--error-format" => {
                let v = argv.next().ok_or("--error-format needs a value")?;
                error_format = match v.as_str() {
                    "human" => ErrorFormat::Human,
                    "json" => ErrorFormat::Json,
                    other => return Err(format!("unknown error format {other:?}\n\n{USAGE}")),
                };
            }
            "--annotations" => annotations = true,
            "--lint" => lint = true,
            "--allow" => {
                let v = argv.next().ok_or("--allow needs a rule")?;
                check_rule_key("--allow", &v)?;
                lint_overrides.push((v, LintLevel::Allow));
            }
            "--warn" => {
                let v = argv.next().ok_or("--warn needs a rule")?;
                check_rule_key("--warn", &v)?;
                lint_overrides.push((v, LintLevel::Warn));
            }
            "--deny" => {
                let v = argv.next().ok_or("--deny needs a rule")?;
                if v == "warnings" {
                    lint_deny_warnings = true;
                } else {
                    check_rule_key("--deny", &v)?;
                    lint_overrides.push((v, LintLevel::Deny));
                }
            }
            "--timings" => timings = true,
            "--trace" => {
                trace = Some(argv.next().ok_or("--trace needs a value")?);
            }
            "--metrics" => {
                metrics = Some(argv.next().ok_or("--metrics needs a value")?);
            }
            "--addr" => {
                addr = Some(argv.next().ok_or("--addr needs a value")?);
            }
            "--watch" => {
                watch = Some(argv.next().ok_or("--watch needs a value")?);
            }
            "--state-dir" => {
                state_dir = Some(argv.next().ok_or("--state-dir needs a value")?);
            }
            "--poll-ms" => {
                let v = argv.next().ok_or("--poll-ms needs a value")?;
                poll_ms = v.parse().map_err(|_| "bad --poll-ms value")?;
            }
            "--workers" => {
                let v = argv.next().ok_or("--workers needs a value")?;
                workers = v.parse().map_err(|_| "bad --workers value")?;
            }
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|_| "bad --threshold value")?;
            }
            "--pin" => pin = true,
            "--model-metadata" => options.model_metadata = true,
            "--model-latest" => options.model_latest = true,
            "--no-commutativity" => options.commutativity = false,
            "--no-pruning" => options.pruning = false,
            "--no-elimination" => options.elimination = false,
            other if !other.starts_with('-') => {
                paths.push(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    // Single-manifest commands get the resolved thread count directly;
    // `fleet` keeps the raw request (0 = auto) so the engine can divide
    // cores between manifest jobs and per-manifest threads itself.
    options.threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    Ok(Args {
        command,
        paths,
        platform,
        options,
        state,
        json,
        jobs,
        threads,
        cache,
        baseline,
        list,
        error_format,
        annotations,
        timings,
        trace,
        metrics,
        lint,
        lint_overrides,
        lint_deny_warnings,
        addr,
        watch,
        state_dir,
        poll_ms,
        workers,
        threshold,
        pin,
    })
}

/// The lint configuration from the command line (platform plus
/// `--allow/--warn/--deny` overrides).
fn lint_options_for(args: &Args) -> LintOptions {
    LintOptions {
        platform: args.platform,
        overrides: args.lint_overrides.clone(),
        deny_warnings: args.lint_deny_warnings,
    }
}

/// Encodes diagnostics for stderr per `--error-format`: rustc-style
/// snippets (color per `NO_COLOR`/`TERM`) or one compact JSON object per
/// line.
fn format_diagnostics(args: &Args, map: &SourceMap, diagnostics: &[Diagnostic]) -> String {
    match args.error_format {
        ErrorFormat::Human => {
            let opts = RenderOptions::from_env();
            diagnostics
                .iter()
                .map(|d| map.render_with(d, opts))
                .collect::<Vec<_>>()
                .join("\n")
        }
        ErrorFormat::Json => diagnostics
            .iter()
            .map(|d| diagnostic_json(d).render())
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

/// Renders a pipeline error (for commands that still use the `Result`
/// API) with source snippets.
fn format_error(args: &Args, name: &str, source: &str, e: &rehearsal::RehearsalError) -> String {
    let map = SourceMap::single(name, source);
    format_diagnostics(args, &map, e.diagnostics())
}

/// The tool configured from the command line. Both modeling flags ride
/// in `AnalysisOptions`, so the fleet engine and the verdict cache see
/// exactly what the single-shot commands do.
fn tool_for(args: &Args) -> Rehearsal {
    Rehearsal::new(args.platform).with_options(args.options.clone())
}

fn read_manifest(args: &Args) -> Result<String, String> {
    // Only `fleet` takes multiple positional paths; silently dropping an
    // extra manifest here would leave it unchecked.
    if let [_, extra, ..] = args.paths.as_slice() {
        return Err(format!(
            "unexpected extra argument {extra:?} — `{}` takes one manifest\n\n{USAGE}",
            args.command
        ));
    }
    let path = args
        .paths
        .first()
        .ok_or_else(|| format!("missing manifest file\n\n{USAGE}"))?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn print_determinism(report: &rehearsal::DeterminismReport, graph: &rehearsal::FsGraph) {
    let mark = if report.is_deterministic() {
        "✔ "
    } else {
        "✘ "
    };
    print!("{mark}{}", rehearsal::render_determinism(report, graph));
}

fn run_check(args: &Args) -> Result<bool, String> {
    let path = args.paths.first().cloned().unwrap_or_default();
    let source = read_manifest(args)?;
    let tool = tool_for(args);
    let analysis = tool.verify_source(&path, &source);

    // Lint advisories ride along on stderr: the solver-free rules are
    // cheap next to the verification itself, and a missing notifier or
    // race candidate is exactly the context a failing check needs. Only
    // R2xxx findings print (pipeline errors already surface below), and
    // they never touch the verdict or the exit code.
    let lint = rehearsal::lint_source(&path, &source, &lint_options_for(args));
    let advisories: Vec<Diagnostic> = lint
        .findings
        .into_iter()
        .filter(|d| d.code.starts_with("R2"))
        .collect();
    if !advisories.is_empty() {
        eprintln!(
            "{}",
            format_diagnostics(args, &lint.source_map, &advisories)
        );
    }

    // Non-fatal findings (modeling warnings/notes) always go to stderr.
    let warnings: Vec<Diagnostic> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity != Severity::Error)
        .cloned()
        .collect();
    if !warnings.is_empty() {
        eprintln!(
            "{}",
            format_diagnostics(args, &analysis.source_map, &warnings)
        );
    }

    if args.json {
        let (det, idem) = match &analysis.report {
            Some(r) => (Some(&r.determinism), r.idempotence.as_ref()),
            None => (None, None),
        };
        // The analysis is done, so every phase span has closed; the
        // snapshot taken here is the run's complete profile.
        let obs = rehearsal::trace::current().map(|s| s.snapshot());
        println!(
            "{}",
            check_document(
                &path,
                args.platform,
                args.options.model_metadata,
                det,
                idem,
                &analysis.diagnostics,
                obs.as_ref(),
            )
            .render_pretty()
        );
    }

    let Some(report) = &analysis.report else {
        // Pipeline error (or aborted analysis): the error diagnostics are
        // the message; exit code 2 either way.
        let errors: Vec<Diagnostic> = analysis.errors().cloned().collect();
        return Err(format_diagnostics(args, &analysis.source_map, &errors));
    };
    let graph = analysis.graph.as_ref().expect("report implies graph");

    if !args.json {
        print_determinism(&report.determinism, graph);
        if let Some(idem) = &report.idempotence {
            let mark = if idem.is_idempotent() { "✔ " } else { "✘ " };
            print!("{mark}{}", rehearsal::render_idempotence(idem));
        }
        // The source-anchored findings (the two-snippet race report, the
        // non-idempotent culprit) follow the classic counterexample dump —
        // on stderr, like every other diagnostic (`--error-format`
        // documents the stderr stream, so machine consumers can split
        // verdict output from findings).
        let findings: Vec<Diagnostic> = analysis
            .errors()
            .filter(|d| {
                d.code == rehearsal::codes::NONDETERMINISTIC
                    || d.code == rehearsal::codes::NONIDEMPOTENT
            })
            .cloned()
            .collect();
        if !findings.is_empty() {
            eprintln!(
                "{}",
                format_diagnostics(args, &analysis.source_map, &findings)
            );
        }
    }
    Ok(analysis.is_correct())
}

fn run_benchmarks(args: &Args) -> Result<bool, String> {
    let mut all_ok = true;
    let mut rows = Vec::new();
    for b in rehearsal::benchmarks::SUITE {
        // Each benchmark gets its own deadline: the per-analysis budget
        // (--timeout) restarts here rather than being shared by the suite.
        let tool = tool_for(args);
        let start = std::time::Instant::now();
        match tool.check_determinism(b.source) {
            Ok(report) => {
                let verdict = if report.is_deterministic() {
                    "deterministic"
                } else {
                    "NON-DETERMINISTIC"
                };
                let expected = report.is_deterministic() == b.deterministic;
                all_ok &= expected;
                if args.json {
                    rows.push(Json::obj([
                        ("name", Json::str(b.name)),
                        (
                            "verdict",
                            Json::str(if report.is_deterministic() {
                                "deterministic"
                            } else {
                                "nondeterministic"
                            }),
                        ),
                        ("expected", Json::Bool(expected)),
                        ("millis", Json::num(start.elapsed().as_millis() as u32)),
                    ]));
                } else {
                    println!(
                        "{:<18} {:<18} {:>8.2?}  (expected: {})",
                        b.name,
                        verdict,
                        start.elapsed(),
                        if expected { "✔" } else { "✘ MISMATCH" }
                    );
                }
            }
            Err(e) => {
                all_ok = false;
                if args.json {
                    rows.push(Json::obj([
                        ("name", Json::str(b.name)),
                        ("verdict", Json::str("error")),
                        ("detail", Json::str(e.to_string())),
                        ("expected", Json::Bool(false)),
                        ("millis", Json::num(start.elapsed().as_millis() as u32)),
                    ]));
                } else {
                    println!("{:<18} error: {e}", b.name);
                }
            }
        }
    }
    if args.json {
        let doc = Json::obj([
            ("schema", Json::str("rehearsal-benchmarks/1")),
            ("platform", Json::str(args.platform.to_string())),
            ("benchmarks", Json::Arr(rows)),
            ("all_expected", Json::Bool(all_ok)),
        ]);
        println!("{}", doc.render_pretty());
    }
    Ok(all_ok)
}

/// `rehearsal lint`: run the solver-free analyzer over every manifest
/// under the given paths. Findings go to stderr (per `--error-format`);
/// the summary (or the `rehearsal-lint/1` JSON report) goes to stdout.
/// Exits non-zero iff any finding lands at error severity.
fn run_lint(args: &Args) -> Result<bool, String> {
    if args.paths.is_empty() {
        return Err(format!(
            "lint needs a manifest file or directory\n\n{USAGE}"
        ));
    }
    let mut manifests = Vec::new();
    for root in &args.paths {
        // Unlike `fleet`, a directory with zero manifests is fine: linting
        // a module tree that happens to hold no .pp files reports clean.
        manifests.extend(discover_manifests(root).map_err(|e| format!("{root}: {e}"))?);
    }
    let lint_opts = lint_options_for(args);
    let mut rows = Vec::new();
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for path in &manifests {
        let display = path.display().to_string();
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {display}: {e}"))?;
        let report = rehearsal::lint_source(&display, &source, &lint_opts);
        let (e, w, n) = report.counts();
        errors += e;
        warnings += w;
        notes += n;
        if !report.findings.is_empty() {
            eprintln!(
                "{}",
                format_diagnostics(args, &report.source_map, &report.findings)
            );
        }
        if args.json {
            rows.push(Json::obj([
                ("manifest", Json::str(&display)),
                ("rules_run", Json::num(report.rules_run as u32)),
                (
                    "findings",
                    Json::Arr(report.findings.iter().map(diagnostic_json).collect()),
                ),
            ]));
        }
    }
    if args.json {
        let doc = Json::obj([
            ("schema", Json::str("rehearsal-lint/1")),
            ("platform", Json::str(args.platform.to_string())),
            ("manifests", Json::Arr(rows)),
            ("errors", Json::num(errors as u32)),
            ("warnings", Json::num(warnings as u32)),
            ("notes", Json::num(notes as u32)),
        ]);
        println!("{}", doc.render_pretty());
    } else {
        let mark = if errors == 0 { "✔" } else { "✘" };
        println!(
            "{mark} linted {} manifest{}: {errors} error{}, {warnings} warning{}, {notes} note{}",
            manifests.len(),
            if manifests.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if notes == 1 { "" } else { "s" },
        );
    }
    Ok(errors == 0)
}

fn run_fleet(args: &Args) -> Result<bool, String> {
    // Collect manifests: every positional path (directory or file),
    // plus an optional explicit list.
    let mut manifests = Vec::new();
    for root in &args.paths {
        let found = discover_manifests(root).map_err(|e| format!("{root}: {e}"))?;
        if found.is_empty() {
            return Err(format!("{root}: no .pp manifests found"));
        }
        manifests.extend(found);
    }
    if let Some(list) = &args.list {
        manifests.extend(read_manifest_list(list).map_err(|e| format!("{list}: {e}"))?);
    }
    if manifests.is_empty() {
        return Err(format!("fleet needs a directory or --list\n\n{USAGE}"));
    }

    let options = FleetOptions {
        jobs: args.jobs,
        threads: args.threads,
        analysis: args.options.clone(),
        cancel: None,
        lint: args.lint,
    };
    // One open-once state handle for the run: `--cache`/`--baseline`
    // files are read here, shared with the engine by reference, and
    // written back exactly once below — the same code path the daemon
    // uses, so batch and serve can never diverge on persistence.
    let state = StateDir::in_memory();
    if let Some(path) = &args.cache {
        state.set_cache(VerdictCache::open(path).map_err(|e| format!("{path}: {e}"))?);
    }
    if let Some(path) = &args.baseline {
        state.set_baseline(BaselineStore::open(path).map_err(|e| format!("{path}: {e}"))?);
    }
    let state = std::sync::Arc::new(state);
    let mut engine = FleetEngine::new(options).with_state(state.clone());
    let report = engine.run_paths(&manifests, &[args.platform]);
    state.flush().map_err(|e| format!("{e}"))?;
    if args.json {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render_table());
    }
    // GitHub Actions inline annotations from the diagnostics stream, only
    // on an actual Actions runner.
    if args.annotations && std::env::var_os("GITHUB_ACTIONS").is_some() {
        print!("{}", github_annotations(&report));
    }
    Ok(report.all_clean())
}

/// `rehearsal serve`: bind the warm-core daemon and run its accept loop
/// until SIGINT/SIGTERM (or `POST /v1/shutdown`) triggers the graceful
/// drain.
fn run_serve(args: &Args) -> Result<bool, String> {
    use rehearsal::serve::{ServeOptions, Server};
    let options = ServeOptions {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7777".to_string()),
        platform: args.platform,
        analysis: args.options.clone(),
        workers: args.workers,
        watch: args.watch.as_ref().map(std::path::PathBuf::from),
        poll_ms: args.poll_ms,
        state_dir: args.state_dir.as_ref().map(std::path::PathBuf::from),
        baseline: args.baseline.as_ref().map(std::path::PathBuf::from),
    };
    let server = Server::bind(options).map_err(|e| format!("serve: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    server.install_signal_handlers();
    eprintln!("rehearsal serve: listening on http://{addr} (SIGINT/SIGTERM to drain)");
    server.run().map_err(|e| format!("serve: {e}"))?;
    Ok(true)
}

/// `rehearsal coverage`: the drift/coverage CI gate (exit 0 clean, 1 on
/// drift or below-threshold coverage, 2 on errors).
fn run_coverage(args: &Args) -> Result<bool, String> {
    let options = rehearsal::serve::CoverageOptions {
        paths: args.paths.clone(),
        baseline: args.baseline.clone(),
        addr: args.addr.clone(),
        platform: args.platform,
        analysis: args.options.clone(),
        jobs: args.jobs,
        threads: args.threads,
        threshold: args.threshold,
        pin: args.pin,
    };
    let outcome = rehearsal::serve::run_coverage(&options)?;
    if args.json {
        println!("{}", outcome.doc.render_pretty());
    } else {
        let get = |key: &str| {
            outcome
                .doc
                .get(key)
                .and_then(Json::as_u64)
                .unwrap_or_default()
        };
        let coverage = match outcome.doc.get("coverage") {
            Some(Json::Num(f)) => *f * 100.0,
            _ => 0.0,
        };
        println!(
            "{} {} manifest(s): {} pinned, {} drifted, \
             coverage {coverage:.1}% (threshold {:.1}%){}",
            if outcome.pass { "✔" } else { "✘" },
            get("manifests"),
            get("pinned"),
            get("drifted"),
            args.threshold,
            if args.pin {
                " — baseline re-pinned"
            } else {
                ""
            },
        );
    }
    Ok(outcome.pass)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    // One trace session covers the whole command when any observability
    // surface wants it: `--timings`/`--trace`/`--metrics` explicitly, and
    // `--json` because the check document embeds phases and metrics.
    // Everywhere else tracing stays disabled (a single atomic load per
    // instrumentation site).
    let observing = args.timings || args.trace.is_some() || args.metrics.is_some() || args.json;
    let session = observing.then(Session::new);
    let _guard = session.as_ref().map(Session::install);

    let result = dispatch(&args);

    if let Some(session) = &session {
        let snap = session.snapshot();
        if args.timings {
            eprint!("{}", snap.render_tree());
        }
        if let Some(path) = &args.trace {
            std::fs::write(path, snap.to_chrome_trace())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &args.metrics {
            std::fs::write(path, snap.metrics.to_prometheus())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    result
}

fn dispatch(args: &Args) -> Result<bool, String> {
    match args.command.as_str() {
        "check" => run_check(args),
        "idempotence" => {
            let path = args.paths.first().cloned().unwrap_or_default();
            let source = read_manifest(args)?;
            let tool = tool_for(args);
            let report = tool
                .check_idempotence(&source)
                .map_err(|e| format_error(args, &path, &source, &e))?;
            let mark = if report.is_idempotent() {
                "✔ "
            } else {
                "✘ "
            };
            print!("{mark}{}", rehearsal::render_idempotence(&report));
            Ok(report.is_idempotent())
        }
        "repair" => {
            let path = args.paths.first().cloned().unwrap_or_default();
            let source = read_manifest(args)?;
            let tool = tool_for(args);
            let graph = tool
                .lower(&source)
                .map_err(|e| format_error(args, &path, &source, &e))?;
            match rehearsal::suggest_repair(&graph, &args.options).map_err(|e| e.to_string())? {
                rehearsal::RepairReport::AlreadyDeterministic => {
                    println!("✔ already deterministic — nothing to repair");
                    Ok(true)
                }
                rehearsal::RepairReport::Repaired { added_edges } => {
                    println!("✔ repairable: add the following dependencies");
                    for (a, b) in added_edges {
                        println!("  {} -> {}", graph.names[a], graph.names[b]);
                    }
                    Ok(true)
                }
                rehearsal::RepairReport::NotRepairable { attempted } => {
                    println!(
                        "✘ no ordering fixes this manifest ({} edges tried) — \
                         the resources conflict fundamentally",
                        attempted.len()
                    );
                    Ok(false)
                }
            }
        }
        "apply" => {
            let path = args.paths.first().cloned().unwrap_or_default();
            let source = read_manifest(args)?;
            let tool = tool_for(args);
            let graph = tool
                .lower(&source)
                .map_err(|e| format_error(args, &path, &source, &e))?;
            // Warn loudly when simulating a nondeterministic manifest.
            let report =
                rehearsal::check_determinism(&graph, &args.options).map_err(|e| e.to_string())?;
            if !report.is_deterministic() {
                eprintln!("warning: manifest is NON-DETERMINISTIC; simulating one arbitrary order");
            }
            let initial = match &args.state {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    rehearsal::fs::parse_state(&text).map_err(|e| e.to_string())?
                }
                None => rehearsal::fs::FileSystem::with_root(),
            };
            let order = graph.topological_order();
            let mut fs = initial;
            for &i in &order {
                match rehearsal::fs::eval(graph.exprs[i], &fs) {
                    Ok(next) => {
                        println!("applied {}", graph.names[i]);
                        fs = next;
                    }
                    Err(_) => {
                        println!("FAILED at {}", graph.names[i]);
                        return Ok(false);
                    }
                }
            }
            println!(
                "
final machine state:"
            );
            print!("{}", rehearsal::fs::render_state(&fs));
            Ok(true)
        }
        "graph" => {
            let path = args.paths.first().cloned().unwrap_or_default();
            let source = read_manifest(args)?;
            let tool = tool_for(args);
            let graph = tool
                .lower(&source)
                .map_err(|e| format_error(args, &path, &source, &e))?;
            println!("{} resources:", graph.names.len());
            for (i, name) in graph.names.iter().enumerate() {
                println!("  [{i}] {name} ({} FS ops)", graph.exprs[i].size());
            }
            for &(a, b) in &graph.edges {
                println!("  {} -> {}", graph.names[a], graph.names[b]);
            }
            Ok(true)
        }
        "benchmarks" => run_benchmarks(args),
        "lint" => run_lint(args),
        "fleet" => run_fleet(args),
        "serve" => run_serve(args),
        "coverage" => run_coverage(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
