//! The `rehearsal` command-line tool.
//!
//! ```text
//! rehearsal check <manifest.pp> [--platform ubuntu|centos] [--json] [...]
//! rehearsal idempotence <manifest.pp> [...]
//! rehearsal graph <manifest.pp> [...]
//! rehearsal benchmarks [--json] [--timeout SECONDS]
//! rehearsal fleet <DIR|FILE...> [--jobs N] [--json] [--cache FILE] [...]
//! ```

use rehearsal::fleet::{
    discover_manifests, read_manifest_list, FleetEngine, FleetOptions, Json, VerdictCache,
};
use rehearsal::{AnalysisOptions, Platform, Rehearsal};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
rehearsal — a configuration verification tool for Puppet

USAGE:
    rehearsal <COMMAND> [OPTIONS]

COMMANDS:
    check <FILE>         verify determinism (and idempotence if deterministic)
    idempotence <FILE>   check idempotence only
    repair <FILE>        propose dependency edges that fix nondeterminism
    apply <FILE>         simulate applying the manifest to a machine state
    graph <FILE>         print the compiled resource graph
    benchmarks           run the paper's 13-benchmark suite
    fleet <DIR|FILE...>  batch-verify every .pp manifest (the CI gate)

OPTIONS:
    --platform <ubuntu|centos>   target platform        [default: ubuntu]
    --state <FILE>               initial machine state for `apply` (default: /)
    --timeout <SECONDS>          per-analysis time budget [default: 600]
    --json                       machine-readable output (check/benchmarks/fleet)
    --model-metadata             honor owner/group/mode attributes (the
                                 metadata-aware FS model; permission races
                                 become checkable)
    --model-latest               model `ensure => latest` packages distinctly
                                 from `present` (version-bump re-overwrite)
    --no-commutativity           disable the commutativity check (fig. 11c)
    --no-pruning                 disable path pruning (fig. 11b)
    --no-elimination             disable resource elimination

FLEET OPTIONS:
    --jobs <N>                   worker threads         [default: one per CPU]
    --cache <FILE>               JSONL verdict cache, reused across runs
    --list <FILE>                read manifest paths from FILE (one per line)

`rehearsal fleet` exits non-zero iff any manifest fails verification,
making it usable directly as a CI gate.
";

struct Args {
    command: String,
    paths: Vec<String>,
    platform: Platform,
    options: AnalysisOptions,
    state: Option<String>,
    json: bool,
    jobs: usize,
    cache: Option<String>,
    list: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut paths = Vec::new();
    let mut platform = Platform::Ubuntu;
    let mut options = AnalysisOptions::default().with_timeout(Duration::from_secs(600));
    let mut state = None;
    let mut json = false;
    let mut jobs = 0;
    let mut cache = None;
    let mut list = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--state" => {
                state = Some(argv.next().ok_or("--state needs a value")?);
            }
            "--platform" => {
                let v = argv.next().ok_or("--platform needs a value")?;
                platform = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--timeout" => {
                let v = argv.next().ok_or("--timeout needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "bad --timeout value")?;
                options.timeout = Some(Duration::from_secs(secs));
            }
            "--jobs" => {
                let v = argv.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad --jobs value")?;
            }
            "--cache" => {
                cache = Some(argv.next().ok_or("--cache needs a value")?);
            }
            "--list" => {
                list = Some(argv.next().ok_or("--list needs a value")?);
            }
            "--json" => json = true,
            "--model-metadata" => options.model_metadata = true,
            "--model-latest" => options.model_latest = true,
            "--no-commutativity" => options.commutativity = false,
            "--no-pruning" => options.pruning = false,
            "--no-elimination" => options.elimination = false,
            other if !other.starts_with('-') => {
                paths.push(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Args {
        command,
        paths,
        platform,
        options,
        state,
        json,
        jobs,
        cache,
        list,
    })
}

/// The tool configured from the command line. Both modeling flags ride
/// in `AnalysisOptions`, so the fleet engine and the verdict cache see
/// exactly what the single-shot commands do.
fn tool_for(args: &Args) -> Rehearsal {
    Rehearsal::new(args.platform).with_options(args.options.clone())
}

fn read_manifest(args: &Args) -> Result<String, String> {
    // Only `fleet` takes multiple positional paths; silently dropping an
    // extra manifest here would leave it unchecked.
    if let [_, extra, ..] = args.paths.as_slice() {
        return Err(format!(
            "unexpected extra argument {extra:?} — `{}` takes one manifest\n\n{USAGE}",
            args.command
        ));
    }
    let path = args
        .paths
        .first()
        .ok_or_else(|| format!("missing manifest file\n\n{USAGE}"))?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn print_determinism(report: &rehearsal::DeterminismReport, graph: &rehearsal::FsGraph) {
    let mark = if report.is_deterministic() {
        "✔ "
    } else {
        "✘ "
    };
    print!("{mark}{}", rehearsal::render_determinism(report, graph));
}

/// The `check --json` document, sharing the fleet serializer.
fn check_json(
    path: &str,
    platform: Platform,
    model_metadata: bool,
    report: &rehearsal::DeterminismReport,
    idempotence: Option<&rehearsal::IdempotenceReport>,
) -> Json {
    let stats = report.stats();
    let verdict = if !report.is_deterministic() {
        "nondeterministic"
    } else if idempotence.is_some_and(|i| !i.is_idempotent()) {
        "nonidempotent"
    } else {
        "deterministic"
    };
    Json::obj([
        ("schema", Json::str("rehearsal-check/3")),
        ("manifest", Json::str(path)),
        ("platform", Json::str(platform.to_string())),
        ("model_metadata", Json::Bool(model_metadata)),
        ("verdict", Json::str(verdict)),
        ("deterministic", Json::Bool(report.is_deterministic())),
        (
            "idempotent",
            match idempotence {
                Some(i) => Json::Bool(i.is_idempotent()),
                None => Json::Null,
            },
        ),
        (
            "stats",
            Json::obj([
                ("resources", Json::num(stats.resources as u32)),
                (
                    "resources_after_elimination",
                    Json::num(stats.resources_after_elimination as u32),
                ),
                ("paths", Json::num(stats.paths as u32)),
                ("tracked_paths", Json::num(stats.tracked_paths as u32)),
                ("meta_ops", Json::num(stats.meta_ops as u32)),
                (
                    "meta_tracked_paths",
                    Json::num(stats.meta_tracked_paths as u32),
                ),
                // Sequence and solver counters can exceed u32 (the state
                // cache accounts factorial spaces; propagations run tens
                // of millions/second) — serialize as f64 to keep the
                // magnitude honest.
                (
                    "sequences_explored",
                    Json::Num(stats.sequences_explored as f64),
                ),
                (
                    "sequences_skipped",
                    Json::Num(stats.sequences_skipped as f64),
                ),
                ("state_cache_hits", Json::num(stats.state_cache_hits as u32)),
                ("distinct_outputs", Json::num(stats.distinct_outputs as u32)),
                ("formula_nodes", Json::num(stats.formula_nodes as u32)),
                ("solver_conflicts", Json::Num(stats.solver_conflicts as f64)),
                (
                    "solver_propagations",
                    Json::Num(stats.solver_propagations as f64),
                ),
                ("grounded_clauses", Json::Num(stats.grounded_clauses as f64)),
                (
                    "grounding_reuse_ratio",
                    Json::Num((stats.grounding_reuse_ratio() * 10000.0).round() / 10000.0),
                ),
            ]),
        ),
    ])
}

fn run_check(args: &Args) -> Result<bool, String> {
    let path = args.paths.first().cloned().unwrap_or_default();
    let source = read_manifest(args)?;
    let tool = tool_for(args);
    let (graph, diagnostics) = tool
        .lower_with_diagnostics(&source)
        .map_err(|e| e.to_string())?;
    for d in &diagnostics {
        eprintln!("note: {d}");
    }
    let report = rehearsal::check_determinism(&graph, &args.options).map_err(|e| e.to_string())?;
    let idem = if report.is_deterministic() {
        Some(rehearsal::check_idempotence(&graph, &args.options).map_err(|e| e.to_string())?)
    } else {
        None
    };
    if args.json {
        println!(
            "{}",
            check_json(
                &path,
                args.platform,
                args.options.model_metadata,
                &report,
                idem.as_ref()
            )
            .render_pretty()
        );
    } else {
        print_determinism(&report, &graph);
        if let Some(idem) = &idem {
            let mark = if idem.is_idempotent() { "✔ " } else { "✘ " };
            print!("{mark}{}", rehearsal::render_idempotence(idem));
        }
    }
    Ok(report.is_deterministic() && idem.as_ref().map(|i| i.is_idempotent()).unwrap_or(false))
}

fn run_benchmarks(args: &Args) -> Result<bool, String> {
    let mut all_ok = true;
    let mut rows = Vec::new();
    for b in rehearsal::benchmarks::SUITE {
        // Each benchmark gets its own deadline: the per-analysis budget
        // (--timeout) restarts here rather than being shared by the suite.
        let tool = tool_for(args);
        let start = std::time::Instant::now();
        match tool.check_determinism(b.source) {
            Ok(report) => {
                let verdict = if report.is_deterministic() {
                    "deterministic"
                } else {
                    "NON-DETERMINISTIC"
                };
                let expected = report.is_deterministic() == b.deterministic;
                all_ok &= expected;
                if args.json {
                    rows.push(Json::obj([
                        ("name", Json::str(b.name)),
                        (
                            "verdict",
                            Json::str(if report.is_deterministic() {
                                "deterministic"
                            } else {
                                "nondeterministic"
                            }),
                        ),
                        ("expected", Json::Bool(expected)),
                        ("millis", Json::num(start.elapsed().as_millis() as u32)),
                    ]));
                } else {
                    println!(
                        "{:<18} {:<18} {:>8.2?}  (expected: {})",
                        b.name,
                        verdict,
                        start.elapsed(),
                        if expected { "✔" } else { "✘ MISMATCH" }
                    );
                }
            }
            Err(e) => {
                all_ok = false;
                if args.json {
                    rows.push(Json::obj([
                        ("name", Json::str(b.name)),
                        ("verdict", Json::str("error")),
                        ("detail", Json::str(e.to_string())),
                        ("expected", Json::Bool(false)),
                        ("millis", Json::num(start.elapsed().as_millis() as u32)),
                    ]));
                } else {
                    println!("{:<18} error: {e}", b.name);
                }
            }
        }
    }
    if args.json {
        let doc = Json::obj([
            ("schema", Json::str("rehearsal-benchmarks/1")),
            ("platform", Json::str(args.platform.to_string())),
            ("benchmarks", Json::Arr(rows)),
            ("all_expected", Json::Bool(all_ok)),
        ]);
        println!("{}", doc.render_pretty());
    }
    Ok(all_ok)
}

fn run_fleet(args: &Args) -> Result<bool, String> {
    // Collect manifests: every positional path (directory or file),
    // plus an optional explicit list.
    let mut manifests = Vec::new();
    for root in &args.paths {
        let found = discover_manifests(root).map_err(|e| format!("{root}: {e}"))?;
        if found.is_empty() {
            return Err(format!("{root}: no .pp manifests found"));
        }
        manifests.extend(found);
    }
    if let Some(list) = &args.list {
        manifests.extend(read_manifest_list(list).map_err(|e| format!("{list}: {e}"))?);
    }
    if manifests.is_empty() {
        return Err(format!("fleet needs a directory or --list\n\n{USAGE}"));
    }

    let options = FleetOptions {
        jobs: args.jobs,
        analysis: args.options.clone(),
        cancel: None,
    };
    let mut engine = FleetEngine::new(options);
    if let Some(path) = &args.cache {
        let cache = VerdictCache::open(path).map_err(|e| format!("{path}: {e}"))?;
        engine = engine.with_cache(cache);
    }
    let report = engine.run_paths(&manifests, &[args.platform]);
    if args.cache.is_some() {
        engine.cache_mut().save().map_err(|e| format!("{e}"))?;
    }
    if args.json {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render_table());
    }
    Ok(report.all_clean())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "check" => run_check(&args),
        "idempotence" => {
            let source = read_manifest(&args)?;
            let tool = tool_for(&args);
            let report = tool.check_idempotence(&source).map_err(|e| e.to_string())?;
            let mark = if report.is_idempotent() {
                "✔ "
            } else {
                "✘ "
            };
            print!("{mark}{}", rehearsal::render_idempotence(&report));
            Ok(report.is_idempotent())
        }
        "repair" => {
            let source = read_manifest(&args)?;
            let tool = tool_for(&args);
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            match rehearsal::suggest_repair(&graph, &args.options).map_err(|e| e.to_string())? {
                rehearsal::RepairReport::AlreadyDeterministic => {
                    println!("✔ already deterministic — nothing to repair");
                    Ok(true)
                }
                rehearsal::RepairReport::Repaired { added_edges } => {
                    println!("✔ repairable: add the following dependencies");
                    for (a, b) in added_edges {
                        println!("  {} -> {}", graph.names[a], graph.names[b]);
                    }
                    Ok(true)
                }
                rehearsal::RepairReport::NotRepairable { attempted } => {
                    println!(
                        "✘ no ordering fixes this manifest ({} edges tried) — \
                         the resources conflict fundamentally",
                        attempted.len()
                    );
                    Ok(false)
                }
            }
        }
        "apply" => {
            let source = read_manifest(&args)?;
            let tool = tool_for(&args);
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            // Warn loudly when simulating a nondeterministic manifest.
            let report =
                rehearsal::check_determinism(&graph, &args.options).map_err(|e| e.to_string())?;
            if !report.is_deterministic() {
                eprintln!("warning: manifest is NON-DETERMINISTIC; simulating one arbitrary order");
            }
            let initial = match &args.state {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    rehearsal::fs::parse_state(&text).map_err(|e| e.to_string())?
                }
                None => rehearsal::fs::FileSystem::with_root(),
            };
            let order = graph.topological_order();
            let mut fs = initial;
            for &i in &order {
                match rehearsal::fs::eval(graph.exprs[i], &fs) {
                    Ok(next) => {
                        println!("applied {}", graph.names[i]);
                        fs = next;
                    }
                    Err(_) => {
                        println!("FAILED at {}", graph.names[i]);
                        return Ok(false);
                    }
                }
            }
            println!(
                "
final machine state:"
            );
            print!("{}", rehearsal::fs::render_state(&fs));
            Ok(true)
        }
        "graph" => {
            let source = read_manifest(&args)?;
            let tool = tool_for(&args);
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            println!("{} resources:", graph.names.len());
            for (i, name) in graph.names.iter().enumerate() {
                println!("  [{i}] {name} ({} FS ops)", graph.exprs[i].size());
            }
            for &(a, b) in &graph.edges {
                println!("  {} -> {}", graph.names[a], graph.names[b]);
            }
            Ok(true)
        }
        "benchmarks" => run_benchmarks(&args),
        "fleet" => run_fleet(&args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
