//! The `rehearsal` command-line tool.
//!
//! ```text
//! rehearsal check <manifest.pp> [--platform ubuntu|centos] [...]
//! rehearsal idempotence <manifest.pp> [...]
//! rehearsal graph <manifest.pp> [...]
//! rehearsal benchmarks
//! ```

use rehearsal::{AnalysisOptions, Platform, Rehearsal};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
rehearsal — a configuration verification tool for Puppet

USAGE:
    rehearsal <COMMAND> [OPTIONS]

COMMANDS:
    check <FILE>         verify determinism (and idempotence if deterministic)
    idempotence <FILE>   check idempotence only
    repair <FILE>        propose dependency edges that fix nondeterminism
    apply <FILE>         simulate applying the manifest to a machine state
    graph <FILE>         print the compiled resource graph
    benchmarks           run the paper's 13-benchmark suite

OPTIONS:
    --platform <ubuntu|centos>   target platform        [default: ubuntu]
    --state <FILE>               initial machine state for `apply` (default: /)
    --timeout <SECONDS>          analysis time budget   [default: 600]
    --no-commutativity           disable the commutativity check (fig. 11c)
    --no-pruning                 disable path pruning (fig. 11b)
    --no-elimination             disable resource elimination
";

struct Args {
    command: String,
    file: Option<String>,
    platform: Platform,
    options: AnalysisOptions,
    state: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut file = None;
    let mut platform = Platform::Ubuntu;
    let mut options = AnalysisOptions::default().with_timeout(Duration::from_secs(600));
    let mut state = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--state" => {
                state = Some(argv.next().ok_or("--state needs a value")?);
            }
            "--platform" => {
                let v = argv.next().ok_or("--platform needs a value")?;
                platform = v.parse().map_err(|e| format!("{e}"))?;
            }
            "--timeout" => {
                let v = argv.next().ok_or("--timeout needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "bad --timeout value")?;
                options.timeout = Some(Duration::from_secs(secs));
            }
            "--no-commutativity" => options.commutativity = false,
            "--no-pruning" => options.pruning = false,
            "--no-elimination" => options.elimination = false,
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(Args {
        command,
        file,
        platform,
        options,
        state,
    })
}

fn read_manifest(args: &Args) -> Result<String, String> {
    let path = args
        .file
        .as_ref()
        .ok_or_else(|| format!("missing manifest file\n\n{USAGE}"))?;
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn print_determinism(report: &rehearsal::DeterminismReport, graph: &rehearsal::FsGraph) {
    let mark = if report.is_deterministic() {
        "✔ "
    } else {
        "✘ "
    };
    print!("{mark}{}", rehearsal::render_determinism(report, graph));
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "check" => {
            let source = read_manifest(&args)?;
            let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            let report =
                rehearsal::check_determinism(&graph, &args.options).map_err(|e| e.to_string())?;
            print_determinism(&report, &graph);
            if report.is_deterministic() {
                let idem = rehearsal::check_idempotence(&graph, &args.options)
                    .map_err(|e| e.to_string())?;
                let mark = if idem.is_idempotent() { "✔ " } else { "✘ " };
                print!("{mark}{}", rehearsal::render_idempotence(&idem));
                Ok(idem.is_idempotent())
            } else {
                Ok(false)
            }
        }
        "idempotence" => {
            let source = read_manifest(&args)?;
            let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
            let report = tool.check_idempotence(&source).map_err(|e| e.to_string())?;
            let mark = if report.is_idempotent() {
                "✔ "
            } else {
                "✘ "
            };
            print!("{mark}{}", rehearsal::render_idempotence(&report));
            Ok(report.is_idempotent())
        }
        "repair" => {
            let source = read_manifest(&args)?;
            let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            match rehearsal::suggest_repair(&graph, &args.options).map_err(|e| e.to_string())? {
                rehearsal::RepairReport::AlreadyDeterministic => {
                    println!("✔ already deterministic — nothing to repair");
                    Ok(true)
                }
                rehearsal::RepairReport::Repaired { added_edges } => {
                    println!("✔ repairable: add the following dependencies");
                    for (a, b) in added_edges {
                        println!("  {} -> {}", graph.names[a], graph.names[b]);
                    }
                    Ok(true)
                }
                rehearsal::RepairReport::NotRepairable { attempted } => {
                    println!(
                        "✘ no ordering fixes this manifest ({} edges tried) — \
                         the resources conflict fundamentally",
                        attempted.len()
                    );
                    Ok(false)
                }
            }
        }
        "apply" => {
            let source = read_manifest(&args)?;
            let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            // Warn loudly when simulating a nondeterministic manifest.
            let report =
                rehearsal::check_determinism(&graph, &args.options).map_err(|e| e.to_string())?;
            if !report.is_deterministic() {
                eprintln!("warning: manifest is NON-DETERMINISTIC; simulating one arbitrary order");
            }
            let initial = match &args.state {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    rehearsal::fs::parse_state(&text).map_err(|e| e.to_string())?
                }
                None => rehearsal::fs::FileSystem::with_root(),
            };
            let order = graph.topological_order();
            let mut fs = initial;
            for &i in &order {
                match rehearsal::fs::eval(&graph.exprs[i], &fs) {
                    Ok(next) => {
                        println!("applied {}", graph.names[i]);
                        fs = next;
                    }
                    Err(_) => {
                        println!("FAILED at {}", graph.names[i]);
                        return Ok(false);
                    }
                }
            }
            println!(
                "
final machine state:"
            );
            print!("{}", rehearsal::fs::render_state(&fs));
            Ok(true)
        }
        "graph" => {
            let source = read_manifest(&args)?;
            let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
            let graph = tool.lower(&source).map_err(|e| e.to_string())?;
            println!("{} resources:", graph.names.len());
            for (i, name) in graph.names.iter().enumerate() {
                println!("  [{i}] {name} ({} FS ops)", graph.exprs[i].size());
            }
            for &(a, b) in &graph.edges {
                println!("  {} -> {}", graph.names[a], graph.names[b]);
            }
            Ok(true)
        }
        "benchmarks" => {
            let mut all_ok = true;
            for b in rehearsal::benchmarks::SUITE {
                let tool = Rehearsal::new(args.platform).with_options(args.options.clone());
                let start = std::time::Instant::now();
                match tool.check_determinism(b.source) {
                    Ok(report) => {
                        let verdict = if report.is_deterministic() {
                            "deterministic"
                        } else {
                            "NON-DETERMINISTIC"
                        };
                        let expected = report.is_deterministic() == b.deterministic;
                        all_ok &= expected;
                        println!(
                            "{:<18} {:<18} {:>8.2?}  (expected: {})",
                            b.name,
                            verdict,
                            start.elapsed(),
                            if expected { "✔" } else { "✘ MISMATCH" }
                        );
                    }
                    Err(e) => {
                        all_ok = false;
                        println!("{:<18} error: {e}", b.name);
                    }
                }
            }
            Ok(all_ok)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
