//! The unified diagnostics API: source-anchored findings end to end.
//!
//! ```text
//! cargo run --example diagnostics
//! ```
//!
//! `Rehearsal::verify_source` never fails: parse errors, dependency
//! cycles, compile errors, and analysis findings (the determinism race,
//! non-idempotence) all come back as `Diagnostic`s — severity, stable
//! code (`R0xxx` frontend / `R1xxx` compile / `R3xxx` analysis), message,
//! and primary + secondary spans into the manifest — which the bundled
//! `SourceMap` renders as rustc-style snippets.

use rehearsal::fleet::diagnostic_json;
use rehearsal::{codes, Platform, Rehearsal};

const RACY: &str = r#"package { 'vim': ensure => present }
file { '/home/carol/.vimrc': content => 'syntax on' }
user { 'carol': ensure => present, managehome => true }
"#;

const BROKEN: &str = "package { 'vim' ensure => present }\n";

fn main() {
    let tool = Rehearsal::new(Platform::Ubuntu);

    // 1. A manifest with a missing dependency: the race report points at
    //    *both* racing resource declarations.
    println!("== racy manifest ==");
    let analysis = tool.verify_source("intro.pp", RACY);
    assert!(!analysis.is_correct());
    for d in &analysis.diagnostics {
        print!("{}", analysis.source_map.render(d));
    }
    let race = analysis
        .diagnostics
        .iter()
        .find(|d| d.code == codes::NONDETERMINISTIC)
        .expect("race diagnostic");
    assert!(race.has_resolvable_span());
    assert_eq!(race.secondary.len(), 1, "the other declaration is cited");

    // 2. The same finding as the documented machine encoding (what
    //    `--error-format json`, `check --json` schema rehearsal-check/5,
    //    and fleet rows carry).
    println!("\n== machine encoding ==");
    println!("{}", diagnostic_json(race).render_pretty());

    // 3. A parse error: also a diagnostic, also anchored.
    println!("\n== broken manifest ==");
    let analysis = tool.verify_source("broken.pp", BROKEN);
    assert!(analysis.report.is_none());
    let err = analysis.errors().next().expect("parse error");
    assert_eq!(err.code, codes::SYNTAX_ERROR);
    print!("{}", analysis.source_map.render(err));

    println!("\ndiagnostics demo complete ✔");
}
