//! User onboarding with a defined type (the paper's fig. 2) plus SSH keys
//! — including the missing user→key dependency Rehearsal found in a real
//! benchmark (§6, "Bugs found").
//!
//! ```text
//! cargo run --example user_onboarding
//! ```

use rehearsal::{Platform, Rehearsal};

const ONBOARDING: &str = r#"
    define engineer($key) {
      user { "$title":
        ensure     => present,
        managehome => true,
        shell      => '/bin/bash',
      }
      file { "/home/${title}/.vimrc":
        content => 'syntax on',
        require => User["$title"],
      }
      ssh_authorized_key { "${title}@laptop":
        user    => "$title",
        type    => 'ssh-rsa',
        key     => $key,
        require => User["$title"],
      }
    }

    engineer { 'alice': key => 'AAAAB3NzaC1yc2E-alice' }
    engineer { 'carol': key => 'AAAAB3NzaC1yc2E-carol' }
"#;

/// The same module with the key's `require` forgotten.
const BUGGY: &str = r#"
    define engineer($key) {
      user { "$title":
        ensure     => present,
        managehome => true,
      }
      ssh_authorized_key { "${title}@laptop":
        user => "$title",
        type => 'ssh-rsa',
        key  => $key,
      }
    }

    engineer { 'alice': key => 'AAAAB3NzaC1yc2E-alice' }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tool = Rehearsal::new(Platform::Ubuntu);

    println!("onboarding module with correct dependencies…");
    let report = tool.verify(ONBOARDING)?;
    println!(
        "  deterministic: {} / idempotent: {}",
        report.determinism.is_deterministic(),
        report
            .idempotence
            .as_ref()
            .map(|r| r.is_idempotent())
            .unwrap_or(false),
    );
    assert!(report.is_correct());

    println!("\nsame module, key does not require its user…");
    let report = tool.check_determinism(BUGGY)?;
    println!(
        "  verdict: {}",
        if report.is_deterministic() {
            "deterministic"
        } else {
            "NON-DETERMINISTIC — the key may be written before the home directory exists"
        }
    );
    Ok(())
}
