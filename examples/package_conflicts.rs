//! Package-manager entanglement: the paper's fig. 3c "silent failure".
//!
//! ```text
//! cargo run --example package_conflicts
//! ```
//!
//! On Ubuntu 14.04, `golang-go` depends on `perl`. A manifest that removes
//! perl and installs Go can therefore reach **two different success
//! states** depending on order — with no error at all. The original
//! Rehearsal cannot see this because it ignores package dependency
//! metadata (paper §8 lists consuming it as future work); this
//! reproduction implements that extension behind
//! [`Rehearsal::with_dependency_closures`].

use rehearsal::{DeterminismReport, Platform, Rehearsal};

const MANIFEST: &str = r#"
    package { 'golang-go': ensure => present }
    package { 'perl':      ensure => absent }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Faithful mode: package models contain only their own files, so the
    // two resources are independent and the manifest verifies.
    let faithful = Rehearsal::new(Platform::Ubuntu);
    let r = faithful.check_determinism(MANIFEST)?;
    println!(
        "without dependency metadata (original Rehearsal): {}",
        if r.is_deterministic() {
            "deterministic — the entanglement is invisible"
        } else {
            "non-deterministic"
        }
    );

    // Extension: model `apt`'s dependency closures.
    let extended = Rehearsal::new(Platform::Ubuntu).with_dependency_closures(true);
    match extended.check_determinism(MANIFEST)? {
        DeterminismReport::NonDeterministic(cex, _) => {
            println!("with dependency closures: NON-DETERMINISTIC");
            println!(
                "  both orders succeed: A {} / B {}",
                cex.outcome_a.is_ok(),
                cex.outcome_b.is_ok()
            );
            let go = rehearsal::fs::FsPath::parse("/usr/bin/go")?;
            let (a, b) = (cex.outcome_a?, cex.outcome_b?);
            println!(
                "  /usr/bin/go after order A: {} — after order B: {}",
                if a.is_file(go) { "present" } else { "absent" },
                if b.is_file(go) { "present" } else { "absent" },
            );
            println!("  a silent failure: no error, two different machines.");
        }
        DeterminismReport::Deterministic(_) => {
            println!("with dependency closures: unexpectedly deterministic?!");
        }
    }
    Ok(())
}
