//! Quickstart: verify the paper's introductory manifest (§1).
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The manifest installs vim, creates carol's account, and writes her
//! `.vimrc` — but forgets to say that the file needs the user's home
//! directory to exist. Rehearsal finds the bug and prints a concrete
//! counterexample; adding one dependency arrow fixes it.

use rehearsal::{DeterminismReport, Platform, Rehearsal};

const BUGGY: &str = r#"
    package { 'vim': ensure => present }
    file { '/home/carol/.vimrc': content => 'syntax on' }
    user { 'carol': ensure => present, managehome => true }
"#;

const FIXED: &str = r#"
    package { 'vim': ensure => present }
    file { '/home/carol/.vimrc': content => 'syntax on' }
    user { 'carol': ensure => present, managehome => true }
    User['carol'] -> File['/home/carol/.vimrc']
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tool = Rehearsal::new(Platform::Ubuntu);

    println!("checking the buggy manifest…");
    let graph = tool.lower(BUGGY)?;
    match rehearsal::check_determinism(&graph, tool.options())? {
        DeterminismReport::Deterministic(_) => {
            println!("unexpectedly deterministic?!");
        }
        DeterminismReport::NonDeterministic(cex, stats) => {
            println!(
                "NON-DETERMINISTIC ({} resources, {} modeled paths)",
                stats.resources, stats.paths
            );
            let names = |order: &[usize]| {
                order
                    .iter()
                    .map(|&i| graph.names[i].as_str())
                    .collect::<Vec<_>>()
                    .join(" → ")
            };
            println!("  order A: {}", names(&cex.order_a));
            println!("  order B: {}", names(&cex.order_b));
            println!(
                "  outcome A: {}",
                match &cex.outcome_a {
                    Ok(_) => "succeeds".to_string(),
                    Err(e) => format!("{e}"),
                }
            );
            println!(
                "  outcome B: {}",
                match &cex.outcome_b {
                    Ok(_) => "succeeds".to_string(),
                    Err(e) => format!("{e}"),
                }
            );
        }
    }

    println!("\nchecking the fixed manifest…");
    let report = tool.verify(FIXED)?;
    assert!(report.is_correct());
    println!("deterministic ✔ and idempotent ✔");
    Ok(())
}
