//! Auditing a fleet's worth of manifests: run the determinacy analysis
//! over the whole reconstructed benchmark suite and summarize, the way an
//! operations team would gate merges in CI.
//!
//! ```text
//! cargo run --release --example fleet_audit
//! ```

use rehearsal::benchmarks::SUITE;
use rehearsal::{Platform, Rehearsal};
use std::time::Instant;

fn main() {
    let tool = Rehearsal::new(Platform::Ubuntu);
    let mut buggy = Vec::new();
    println!(
        "{:<18} {:>10} {:>8} {:>8}  verdict",
        "manifest", "resources", "paths", "time"
    );
    for b in SUITE {
        let start = Instant::now();
        match tool.check_determinism(b.source) {
            Ok(report) => {
                let stats = report.stats();
                println!(
                    "{:<18} {:>10} {:>8} {:>7.1?}  {}",
                    b.name,
                    stats.resources,
                    stats.paths,
                    start.elapsed(),
                    if report.is_deterministic() {
                        "ok".to_string()
                    } else {
                        buggy.push(b.name);
                        "NON-DETERMINISTIC".to_string()
                    }
                );
            }
            Err(e) => println!("{:<18} error: {e}", b.name),
        }
    }
    println!();
    if buggy.is_empty() {
        println!("fleet is clean ✔");
    } else {
        println!(
            "{} of {} manifests have determinism bugs: {}",
            buggy.len(),
            SUITE.len(),
            buggy.join(", ")
        );
        println!("(the paper's evaluation found the same 6, §6 \"Bugs found\")");
    }
}
