//! Deploying a web server: the paper's fig. 3a scenario.
//!
//! ```text
//! cargo run --example webserver_deploy
//! ```
//!
//! A common Puppet idiom installs a package and then overwrites its
//! default configuration. If the `file → package` dependency is missing,
//! Puppet may try to write the configuration into a directory the package
//! has not created yet. Rehearsal detects this, and after the fix proves
//! the manifest deterministic and idempotent — and that the site config
//! always ends up with our content (an invariant check, §5).

use rehearsal::fs::{Content, FsPath};
use rehearsal::{Invariant, Platform, Rehearsal};

const BUGGY: &str = r#"
    file { '/etc/apache2/sites-available/000-default.conf':
      content => 'DocumentRoot /srv/www',
    }
    package { 'apache2': ensure => present }
"#;

const FIXED: &str = r#"
    file { '/etc/apache2/sites-available/000-default.conf':
      content => 'DocumentRoot /srv/www',
      require => Package['apache2'],
    }
    package { 'apache2': ensure => present }
    service { 'apache2':
      ensure    => running,
      require   => Package['apache2'],
      subscribe => File['/etc/apache2/sites-available/000-default.conf'],
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tool = Rehearsal::new(Platform::Ubuntu);

    println!("fig. 3a, as written (missing dependency)…");
    let report = tool.check_determinism(BUGGY)?;
    println!(
        "  verdict: {}",
        if report.is_deterministic() {
            "deterministic"
        } else {
            "NON-DETERMINISTIC — the file may be written before apache2 exists"
        }
    );

    println!("\nwith `require => Package['apache2']`…");
    let report = tool.verify(FIXED)?;
    println!(
        "  determinism: {} / idempotence: {}",
        if report.determinism.is_deterministic() {
            "✔"
        } else {
            "✘"
        },
        match &report.idempotence {
            Some(r) if r.is_idempotent() => "✔",
            _ => "✘",
        }
    );

    // §5: the site configuration is always ours after a successful run.
    let path = FsPath::parse("/etc/apache2/sites-available/000-default.conf")?;
    let content = Content::intern("DocumentRoot /srv/www");
    let inv = Invariant::FileWithContent(path, content);
    let r = tool.check_invariant(FIXED, &inv)?;
    println!(
        "  invariant {:?}: {}",
        inv.to_string(),
        if r.holds() {
            "holds ✔"
        } else {
            "violated ✘"
        }
    );
    Ok(())
}
